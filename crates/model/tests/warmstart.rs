//! Warm-start equivalence at the model layer: chaining an LP basis across
//! structurally-adjacent solves must never change a single bit of `θ`.
//!
//! Two production chain shapes are pinned:
//!
//! * a **rule sweep** — consecutive [`VlbRule`]s over the same topology
//!   and pattern (the `modeled_throughput_multi` shape);
//! * a **`FaultSet` superset chain** — growing failure fractions under one
//!   seed (the `fig_faults` shape; `FaultSet::sample_global_links` takes a
//!   prefix of one seeded shuffle, so larger fractions are strict
//!   supersets of smaller ones).
//!
//! Every warm solve is compared against a cold solve of the identical
//! instance: objectives must be bit-identical (`f64::to_bits`), and the
//! chained warm solves must spend strictly fewer simplex pivots over the
//! chain's tail.

use tugal_model::{
    modeled_throughput, modeled_throughput_degraded, modeled_throughput_degraded_warm,
    modeled_throughput_multi, modeled_throughput_warm, ModelVariant, ModelWarmCache,
};
use tugal_routing::VlbRule;
use tugal_topology::{Dragonfly, DragonflyParams, FaultSet};
use tugal_traffic::{Shift, TrafficPattern};

fn topo(p: u32, a: u32, h: u32, g: u32) -> Dragonfly {
    Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap()
}

fn rules() -> [VlbRule; 3] {
    [
        VlbRule::ClassLimit {
            max_hops: 3,
            frac_next: 0.0,
        },
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.6,
        },
        VlbRule::All,
    ]
}

#[test]
fn rule_sweep_warm_chain_is_bit_identical_to_cold_solves() {
    let t = topo(2, 4, 2, 5);
    let d = Shift::new(&t, 1, 0).demands().unwrap();
    let mut chain = ModelWarmCache::new();
    let mut warm_pivots = Vec::new();
    let mut cold_pivots = Vec::new();
    for rule in rules() {
        let warm =
            modeled_throughput_warm(&t, &d, rule, ModelVariant::DrawProportional, &mut chain)
                .unwrap();
        warm_pivots.push(chain.stats.pivots);
        // A fresh cache never carries a basis: this is a cold solve with
        // stats attached.
        let mut cold_cache = ModelWarmCache::new();
        let cold = modeled_throughput_warm(
            &t,
            &d,
            rule,
            ModelVariant::DrawProportional,
            &mut cold_cache,
        )
        .unwrap();
        cold_pivots.push(cold_cache.stats.pivots);
        assert_eq!(
            warm.to_bits(),
            cold.to_bits(),
            "{rule:?}: warm θ {warm} vs cold θ {cold}"
        );
        // And the plain (cache-free) API is the same solve again.
        let plain = modeled_throughput(&t, &d, rule, ModelVariant::DrawProportional).unwrap();
        assert_eq!(cold.to_bits(), plain.to_bits(), "{rule:?}");
    }
    // Cumulative warm pivots after the whole chain must undercut the sum
    // of the independent cold solves: the carried bases did real work.
    let total_cold: usize = cold_pivots.iter().sum();
    let total_warm = *warm_pivots.last().unwrap();
    assert!(
        total_warm < total_cold,
        "warm chain spent {total_warm} pivots vs cold total {total_cold}"
    );
    assert!(chain.stats.warm_hits > 0, "no warm start ever succeeded");
}

#[test]
fn multi_rule_solve_is_bit_identical_to_single_solves() {
    // `modeled_throughput_multi` chains a warm cache internally; that must
    // be invisible — not approximately, *bitwise*.
    let t = topo(2, 4, 2, 5);
    let d = Shift::new(&t, 1, 0).demands().unwrap();
    let multi = modeled_throughput_multi(&t, &d, &rules(), ModelVariant::DrawProportional).unwrap();
    for (i, rule) in rules().into_iter().enumerate() {
        let single = modeled_throughput(&t, &d, rule, ModelVariant::DrawProportional).unwrap();
        assert_eq!(multi[i].to_bits(), single.to_bits(), "{rule:?}");
    }
}

#[test]
fn fault_superset_chain_warm_is_bit_identical_with_fewer_tail_pivots() {
    let t = topo(2, 4, 2, 9);
    let d = Shift::new(&t, 1, 0).demands().unwrap();
    let fractions = [0.0, 0.03, 0.06, 0.09, 0.12];
    let mut chain = ModelWarmCache::new();
    let mut last_warm_pivots = 0usize;
    let mut tail_warm = 0usize;
    let mut tail_cold = 0usize;
    for (k, &f) in fractions.iter().enumerate() {
        let faults = FaultSet::sample_global_links(&t, f, 0xFA17);
        let deg = t.degrade(&faults);
        let warm = modeled_throughput_degraded_warm(
            &t,
            &deg,
            &d,
            VlbRule::All,
            ModelVariant::DrawProportional,
            &mut chain,
        )
        .unwrap();
        let step_warm = chain.stats.pivots - last_warm_pivots;
        last_warm_pivots = chain.stats.pivots;

        let mut cold_cache = ModelWarmCache::new();
        let cold = modeled_throughput_degraded_warm(
            &t,
            &deg,
            &d,
            VlbRule::All,
            ModelVariant::DrawProportional,
            &mut cold_cache,
        )
        .unwrap();
        assert_eq!(
            warm.theta.to_bits(),
            cold.theta.to_bits(),
            "fraction {f}: warm θ {} vs cold θ {}",
            warm.theta,
            cold.theta
        );
        assert_eq!(warm.unreachable_pairs, cold.unreachable_pairs);
        // The warm-free public API must match too.
        let plain =
            modeled_throughput_degraded(&t, &deg, &d, VlbRule::All, ModelVariant::DrawProportional)
                .unwrap();
        assert_eq!(cold.theta.to_bits(), plain.theta.to_bits(), "fraction {f}");
        if k > 0 {
            tail_warm += step_warm;
            tail_cold += cold_cache.stats.pivots;
        }
    }
    assert!(
        tail_warm < tail_cold,
        "warm chain tail spent {tail_warm} pivots vs cold {tail_cold}"
    );
    assert!(
        chain.stats.warm_hits > 0,
        "no warm start succeeded along the fault chain: {:?}",
        chain.stats
    );
}

#[test]
fn zero_fault_degraded_warm_solve_matches_pristine_model() {
    // The f = 0 point of a warm-started fault sweep must reproduce the
    // pristine model bit-for-bit — `fig_faults` asserts the same at run
    // time; this pins it in-tree.
    let t = topo(2, 4, 2, 5);
    let d = Shift::new(&t, 1, 0).demands().unwrap();
    let deg = t.degrade(&FaultSet::empty());
    let mut chain = ModelWarmCache::new();
    let degraded = modeled_throughput_degraded_warm(
        &t,
        &deg,
        &d,
        VlbRule::All,
        ModelVariant::DrawProportional,
        &mut chain,
    )
    .unwrap();
    let pristine =
        modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert_eq!(degraded.theta.to_bits(), pristine.to_bits());
    assert_eq!(degraded.unreachable_pairs, 0);
}
