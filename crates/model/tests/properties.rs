//! Properties of the throughput model, checked on seeded random
//! instances: the solved allocation is *primal-feasible* (no channel over
//! capacity, per-pair rates conserved), and the model respects the
//! topology's symmetry (relabeling switches within groups moves `θ` by no
//! more than the documented rhs-jitter noise).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tugal_model::{modeled_primal, modeled_throughput, ModelVariant};
use tugal_routing::VlbRule;
use tugal_topology::{Dragonfly, DragonflyParams};

fn topo(p: u32, a: u32, h: u32, g: u32) -> Dragonfly {
    Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap()
}

/// A random multi-pair demand set: distinct cross-switch pairs with node
/// flows in `1..=p`.
fn random_demands(t: &Dragonfly, pairs: usize, rng: &mut SmallRng) -> Vec<(u32, u32, u32)> {
    let n = t.num_switches() as u32;
    let p = t.params().p;
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    while out.len() < pairs {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d && seen.insert((s, d)) {
            out.push((s, d, rng.gen_range(1..=p)));
        }
    }
    out
}

/// Capacity of every channel is 1 plus the documented anti-degeneracy rhs
/// jitter (`≤ 1e-4` relative) plus LP tolerance.
const CAPACITY_TOL: f64 = 1.0002;

/// The solved allocation of `modeled_throughput` is feasible: `θ ∈ (0,1]`,
/// every per-pair MIN rate sits in `[0, θ·d]` (so the pair's VLB remainder
/// is non-negative — demand conserved), and no channel — including the
/// ones whose capacity rows the builder pruned as redundant — carries more
/// than its capacity.
#[test]
fn random_instances_are_primal_feasible() {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let rules = [
        VlbRule::All,
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.6,
        },
        VlbRule::Strategic { first_seg: 2 },
    ];
    for (p, a, h, g) in [(2, 4, 2, 5), (1, 3, 2, 4), (4, 8, 4, 9)] {
        let t = topo(p, a, h, g);
        for _ in 0..3 {
            let demands = random_demands(&t, 6, &mut rng);
            let rule = *rules.choose(&mut rng).unwrap();
            let sol = modeled_primal(&t, &demands, rule).unwrap();

            assert!(
                sol.theta > 0.0 && sol.theta <= 1.0001,
                "θ = {} out of range on dfly({p},{a},{h},{g})",
                sol.theta
            );
            assert_eq!(sol.min_rates.len(), demands.len());
            for (&(s, d, flows), &m) in demands.iter().zip(&sol.min_rates) {
                let cap = sol.theta * flows as f64;
                assert!(
                    (-1e-6..=cap + 1e-4).contains(&m),
                    "pair {s}->{d}: MIN rate {m} outside [0, θ·d = {cap}]"
                );
            }
            assert!(!sol.channel_load.is_empty());
            for &(ch, load) in &sol.channel_load {
                assert!(
                    load <= CAPACITY_TOL,
                    "channel {ch:?} over capacity: load {load} on dfly({p},{a},{h},{g})"
                );
                assert!(load >= -1e-5, "negative load {load} on {ch:?}");
            }
        }
    }
}

/// `modeled_primal` and `modeled_throughput` are the same solve: identical
/// `θ` for identical inputs.
#[test]
fn primal_view_matches_plain_throughput() {
    let t = topo(2, 4, 2, 5);
    let mut rng = SmallRng::seed_from_u64(7);
    let demands = random_demands(&t, 8, &mut rng);
    let sol = modeled_primal(&t, &demands, VlbRule::All).unwrap();
    let th =
        modeled_throughput(&t, &demands, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert_eq!(sol.theta, th);
}

/// Relabels switch `s` by permuting local indices within its group.
fn relabel(t: &Dragonfly, perms: &[Vec<u32>], s: u32) -> u32 {
    let a = t.params().a;
    let (g, j) = (s / a, s % a);
    g * a + perms[g as usize][j as usize]
}

/// Throughput is a property of the *pattern up to symmetry*, not of the
/// switch labels: applying a random within-group relabeling to every
/// demand endpoint changes `θ` by no more than the rhs-jitter noise.
#[test]
fn theta_is_invariant_under_within_group_relabeling() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for (p, a, h, g) in [(2, 4, 2, 5), (1, 3, 2, 4)] {
        let t = topo(p, a, h, g);
        // Uniform all-to-all switch demands: as a *set* this pattern is
        // fixed by any switch permutation, so any θ shift is pure solver
        // noise (row ordering, rhs jitter).
        let mut demands = Vec::new();
        for s in 0..t.num_switches() as u32 {
            for d in 0..t.num_switches() as u32 {
                if s != d {
                    demands.push((s, d, p));
                }
            }
        }
        let perms: Vec<Vec<u32>> = (0..g)
            .map(|_| {
                let mut m: Vec<u32> = (0..a).collect();
                m.shuffle(&mut rng);
                m
            })
            .collect();
        let relabeled: Vec<(u32, u32, u32)> = demands
            .iter()
            .map(|&(s, d, f)| (relabel(&t, &perms, s), relabel(&t, &perms, d), f))
            .collect();
        let rule = VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.5,
        };
        let base = modeled_throughput(&t, &demands, rule, ModelVariant::DrawProportional).unwrap();
        let moved =
            modeled_throughput(&t, &relabeled, rule, ModelVariant::DrawProportional).unwrap();
        assert!(
            (base - moved).abs() <= 5e-3,
            "θ moved under relabeling on dfly({p},{a},{h},{g}): {base} vs {moved}"
        );
    }
}

/// The adversarial shift family is also label-free: `shift(dg, ds)` for
/// any `ds` is a within-group relabeling of `shift(dg, 0)`, so their
/// modeled throughputs agree.
#[test]
fn shift_theta_is_independent_of_switch_shift() {
    let t = topo(2, 4, 2, 5);
    let mk = |ds: u32| {
        let p = t.params();
        let mut out = Vec::new();
        for s in 0..t.num_switches() as u32 {
            let (gi, sj) = (s / p.a, s % p.a);
            let d = ((gi + 1) % p.g) * p.a + (sj + ds) % p.a;
            out.push((s, d, p.p));
        }
        out
    };
    let base =
        modeled_throughput(&t, &mk(0), VlbRule::All, ModelVariant::DrawProportional).unwrap();
    for ds in 1..t.params().a {
        let th =
            modeled_throughput(&t, &mk(ds), VlbRule::All, ModelVariant::DrawProportional).unwrap();
        assert!(
            (base - th).abs() <= 5e-3,
            "shift(1,{ds}) diverged: {th} vs shift(1,0) {base}"
        );
    }
}

/// Uniform all-to-all switch demands (fixed as a set by any relabeling).
fn all_to_all(t: &Dragonfly) -> Vec<(u32, u32, u32)> {
    let mut demands = Vec::new();
    for s in 0..t.num_switches() as u32 {
        for d in 0..t.num_switches() as u32 {
            if s != d {
                demands.push((s, d, t.params().p));
            }
        }
    }
    demands
}

/// The LP stays primal-feasible across the topology zoo: palmtree and
/// random arrangements and `global_lag = 2` build solvable models whose
/// allocations respect channel capacities.
#[test]
fn zoo_shapes_solve_to_feasible_allocations() {
    let mut rng = SmallRng::seed_from_u64(0x200);
    let params = DragonflyParams::new(2, 4, 2, 5);
    for spec in tugal_topology::ArrangementSpec::zoo(0x2007) {
        for lag in [1u32, 2] {
            let t = Dragonfly::with_shape(params, spec.build().as_ref(), lag).unwrap();
            let demands = random_demands(&t, 6, &mut rng);
            let sol = modeled_primal(&t, &demands, VlbRule::All).unwrap();
            assert!(
                sol.theta > 0.0 && sol.theta <= 1.0001,
                "{spec} lag{lag}: θ = {}",
                sol.theta
            );
            for &(ch, load) in &sol.channel_load {
                assert!(
                    (-1e-5..=CAPACITY_TOL).contains(&load),
                    "{spec} lag{lag}: channel {ch:?} load {load}"
                );
            }
        }
    }
}

/// Doubling the global cables (`global_lag = 2`) cannot hurt modeled
/// throughput: under the globally-bottlenecked adversarial shift the LP
/// sees strictly more inter-group capacity.
#[test]
fn lag_two_does_not_reduce_modeled_throughput() {
    let params = DragonflyParams::new(2, 4, 2, 5);
    let spec = tugal_topology::ArrangementSpec::Palmtree;
    let t1 = Dragonfly::with_shape(params, spec.build().as_ref(), 1).unwrap();
    let t2 = Dragonfly::with_shape(params, spec.build().as_ref(), 2).unwrap();
    let mk = |t: &Dragonfly| {
        let p = t.params();
        (0..t.num_switches() as u32)
            .map(|s| (s, ((s / p.a + 1) % p.g) * p.a + s % p.a, p.p))
            .collect::<Vec<_>>()
    };
    let th1 =
        modeled_throughput(&t1, &mk(&t1), VlbRule::All, ModelVariant::DrawProportional).unwrap();
    let th2 =
        modeled_throughput(&t2, &mk(&t2), VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert!(
        th2 + 1e-3 >= th1,
        "lag 2 reduced modeled throughput: {th2} vs {th1}"
    );
}

/// Palmtree is a relabeling of relative, and the all-to-all demand set is
/// fixed by any relabeling — so their modeled throughputs agree up to
/// solver noise.
#[test]
fn palmtree_theta_matches_its_relative_isomorph() {
    let params = DragonflyParams::new(2, 4, 2, 5);
    let palm = Dragonfly::with_shape(
        params,
        tugal_topology::ArrangementSpec::Palmtree.build().as_ref(),
        1,
    )
    .unwrap();
    let rel = Dragonfly::with_shape(
        params,
        tugal_topology::ArrangementSpec::Relative.build().as_ref(),
        1,
    )
    .unwrap();
    let rule = VlbRule::ClassLimit {
        max_hops: 4,
        frac_next: 0.5,
    };
    let a = modeled_throughput(
        &palm,
        &all_to_all(&palm),
        rule,
        ModelVariant::DrawProportional,
    )
    .unwrap();
    let b = modeled_throughput(
        &rel,
        &all_to_all(&rel),
        rule,
        ModelVariant::DrawProportional,
    )
    .unwrap();
    assert!(
        (a - b).abs() <= 5e-3,
        "isomorphic arrangements diverged: palmtree {a} vs relative {b}"
    );
}
