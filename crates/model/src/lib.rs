//! # LP-based UGAL throughput model
//!
//! Reconstruction of the performance model the paper uses for Step-1
//! coarse-grain estimation: "a minor modification of Model No. 3 in
//! [Mollah et al., PMBS'17]", solved with CPLEX by the authors and with the
//! from-scratch [`tugal_lp`] simplex here.
//!
//! ## The model
//!
//! For a deterministic traffic pattern (a set of switch-level demands
//! `(src, dst, flows)` with `flows` node pairs each injecting `θ`
//! flits/cycle), the model maximizes the saturation injection rate `θ`
//! subject to unit channel capacities.  Per pair, traffic splits between
//! the MIN candidates and the configured VLB candidate set.
//!
//! UGAL draws **one uniformly random VLB candidate per packet** and routes
//! the packet over it whenever the MIN path is congested.  At adversarial
//! saturation MIN is always congested, so the VLB traffic of a pair spreads
//! *draw-proportionally* — uniformly across the candidate set.  This is the
//! crucial modeling decision: a free (max-flow) allocation could always
//! zero out the long paths, so adding 6-hop candidates could never hurt,
//! contradicting the measured behaviour (Figure 4 of the paper, where "all
//! VLB paths" scores *below* "60% 5-hop").  The paper's modification —
//! "the data rate allocated for a longer VLB path is no more than the data
//! rate allocated for a shorter VLB path" — pulls the model in the same
//! direction; our default [`ModelVariant::DrawProportional`] enforces the
//! limit of that reasoning (equal per-path rates within the candidate set),
//! and [`ModelVariant::MonotoneClasses`] implements the literal monotone
//! relaxation for ablation.
//!
//! ## Scalability
//!
//! Path sets are never enumerated.  Because a VLB path is a MIN segment to
//! an intermediate followed by a MIN segment from it, per-pair path-class
//! counts and per-channel usage decompose over (intermediate, gateway)
//! choices; [`PairStats`] accumulates them in
//! `O((g−2)·a·L)` per pair.  The LP then has one rate variable per pair
//! plus `θ` ([`ModelVariant::DrawProportional`]), and identical capacity
//! rows (parallel links, symmetric positions) are deduplicated before
//! solving.

#![warn(missing_docs)]
// `c1`/`c2`/`h` loop indices are semantic hop counts over fixed small
// arrays; the index style is clearer than iterator chains there.
#![allow(clippy::needless_range_loop)]

mod stats;
mod throughput;

pub use stats::PairStats;
pub use throughput::{
    modeled_bottlenecks, modeled_primal, modeled_primal_lp, modeled_throughput,
    modeled_throughput_degraded, modeled_throughput_degraded_warm, modeled_throughput_multi,
    modeled_throughput_warm, DegradedThroughput, LpStats, ModelError, ModelPrimal, ModelVariant,
    ModelWarmCache,
};

#[cfg(test)]
mod tests;
