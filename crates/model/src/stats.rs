//! Per-pair path-class statistics, computed without enumerating paths.

use std::collections::HashMap;
use tugal_topology::{ChannelId, Degraded, Dragonfly, GroupId, SwitchId};

/// Statistics of one MIN segment length class: how many (intermediate,
/// gateway) realizations produce it and how often each channel appears.
#[derive(Debug, Clone, Default)]
struct SegClass {
    count: f64,
    usage: HashMap<u32, f64>,
}

/// Path-class statistics of one ordered switch pair.
///
/// `combo_count[c1][c2]` is the number of VLB realizations whose first MIN
/// segment has `c1` hops and second has `c2` (`c1, c2 ∈ 1..=3`); the
/// corresponding `combo_usage` maps each channel to the number of such
/// realizations crossing it.  A *realization* is a concrete (intermediate
/// switch, first gateway, second gateway) choice — the unit the UGAL
/// candidate sampler draws uniformly, so multiplicities are exactly the
/// draw probabilities (identical switch sequences reachable through two
/// intermediates count twice, as they are drawn twice as often).
#[derive(Debug, Clone)]
pub struct PairStats {
    /// Number of MIN candidates.
    pub min_count: f64,
    /// Channel usage summed over MIN candidates.
    pub min_usage: Vec<(ChannelId, f64)>,
    /// VLB realization counts per (first, second) segment length.
    pub combo_count: [[f64; 4]; 4],
    /// Channel usage per segment-length combination.
    pub combo_usage: [[Vec<(ChannelId, f64)>; 4]; 4],
}

impl PairStats {
    /// Computes the statistics for the ordered pair `(s, d)`, `s != d`.
    pub fn compute(topo: &Dragonfly, s: SwitchId, d: SwitchId) -> Self {
        Self::compute_inner(topo, None, s, d)
    }

    /// [`PairStats::compute`] over a degraded view: dead channels,
    /// switches and gateways contribute nothing.  A pair with a dead
    /// endpoint has all-zero statistics.  With a pristine view the result
    /// equals `compute` exactly (same accumulation order).
    pub fn compute_degraded(topo: &Dragonfly, deg: &Degraded, s: SwitchId, d: SwitchId) -> Self {
        Self::compute_inner(topo, Some(deg), s, d)
    }

    fn compute_inner(topo: &Dragonfly, deg: Option<&Degraded>, s: SwitchId, d: SwitchId) -> Self {
        assert_ne!(s, d);
        let dead_chan = |c: ChannelId| deg.is_some_and(|dg| dg.channel_dead(c));
        let dead_switch = |sw: SwitchId| deg.is_some_and(|dg| dg.switch_dead(sw));
        if dead_switch(s) || dead_switch(d) {
            return PairStats {
                min_count: 0.0,
                min_usage: Vec::new(),
                combo_count: [[0.0; 4]; 4],
                combo_usage: Default::default(),
            };
        }
        // MIN candidates.
        let mut min_usage: HashMap<u32, f64> = HashMap::new();
        let (gs, gd) = (topo.group_of(s), topo.group_of(d));
        let mut min_count = 0.0;
        if gs == gd {
            if !dead_chan(topo.local_channel(s, d)) {
                min_count = 1.0;
                *min_usage.entry(topo.local_channel(s, d).0).or_default() += 1.0;
            }
        } else {
            let gws = match deg {
                Some(dg) => dg.gateways(gs, gd),
                None => topo.gateways(gs, gd),
            };
            for &(u, v, c) in gws {
                if u != s && dead_chan(topo.local_channel(s, u)) {
                    continue;
                }
                if v != d && dead_chan(topo.local_channel(v, d)) {
                    continue;
                }
                min_count += 1.0;
                if u != s {
                    *min_usage.entry(topo.local_channel(s, u).0).or_default() += 1.0;
                }
                *min_usage.entry(c.0).or_default() += 1.0;
                if v != d {
                    *min_usage.entry(topo.local_channel(v, d).0).or_default() += 1.0;
                }
            }
        }

        // VLB realizations, separably over intermediates.
        let mut combo_count = [[0.0; 4]; 4];
        let mut combo_usage: [[HashMap<u32, f64>; 4]; 4] = Default::default();
        for gi in 0..topo.num_groups() as u32 {
            let gi = GroupId(gi);
            if gi == gs || gi == gd {
                continue;
            }
            for i in topo.switches_in_group(gi) {
                if dead_switch(i) {
                    continue;
                }
                let seg1 = seg_classes(topo, deg, s, i, gs, gi);
                let seg2 = seg_classes(topo, deg, i, d, gi, gd);
                for (c1, s1) in seg1.iter().enumerate() {
                    if s1.count == 0.0 {
                        continue;
                    }
                    for (c2, s2) in seg2.iter().enumerate() {
                        if s2.count == 0.0 {
                            continue;
                        }
                        combo_count[c1][c2] += s1.count * s2.count;
                        let acc = &mut combo_usage[c1][c2];
                        for (&ch, &u) in &s1.usage {
                            *acc.entry(ch).or_default() += u * s2.count;
                        }
                        for (&ch, &u) in &s2.usage {
                            *acc.entry(ch).or_default() += u * s1.count;
                        }
                    }
                }
            }
        }

        let flatten = |m: HashMap<u32, f64>| {
            let mut v: Vec<(ChannelId, f64)> =
                m.into_iter().map(|(c, u)| (ChannelId(c), u)).collect();
            v.sort_unstable_by_key(|&(c, _)| c);
            v
        };
        let mut usage_out: [[Vec<(ChannelId, f64)>; 4]; 4] = Default::default();
        for (c1, row) in combo_usage.into_iter().enumerate() {
            for (c2, m) in row.into_iter().enumerate() {
                usage_out[c1][c2] = flatten(m);
            }
        }
        PairStats {
            min_count,
            min_usage: flatten(min_usage),
            combo_count,
            combo_usage: usage_out,
        }
    }

    /// Total VLB realizations with `c1 + c2 == hops`.
    pub fn class_count(&self, hops: usize) -> f64 {
        let mut total = 0.0;
        for c1 in 1..=3usize {
            for c2 in 1..=3usize {
                if c1 + c2 == hops {
                    total += self.combo_count[c1][c2];
                }
            }
        }
        total
    }

    /// Total VLB realizations.
    pub fn total_count(&self) -> f64 {
        (2..=6).map(|h| self.class_count(h)).sum()
    }

    /// Mean hops over all VLB realizations.
    pub fn mean_vlb_hops(&self) -> f64 {
        let total = self.total_count();
        if total == 0.0 {
            return 0.0;
        }
        (2..=6).map(|h| h as f64 * self.class_count(h)).sum::<f64>() / total
    }
}

/// Length-class statistics of the MIN segments from `a` to `b`
/// (`ga = group(a)`, `gb = group(b)`), indexed by hop count 1..=3.
/// Degraded views contribute only fully surviving segments.
fn seg_classes(
    topo: &Dragonfly,
    deg: Option<&Degraded>,
    a: SwitchId,
    b: SwitchId,
    ga: GroupId,
    gb: GroupId,
) -> [SegClass; 4] {
    let mut out: [SegClass; 4] = Default::default();
    debug_assert_ne!(ga, gb);
    let dead_chan = |c: ChannelId| deg.is_some_and(|dg| dg.channel_dead(c));
    let gws = match deg {
        Some(dg) => dg.gateways(ga, gb),
        None => topo.gateways(ga, gb),
    };
    for &(u, v, c) in gws {
        let mut hops = 1usize;
        let mut chans = [c.0, 0, 0];
        let mut n = 1usize;
        if u != a {
            let lc = topo.local_channel(a, u);
            if dead_chan(lc) {
                continue;
            }
            chans[n] = lc.0;
            n += 1;
            hops += 1;
        }
        if v != b {
            let lc = topo.local_channel(v, b);
            if dead_chan(lc) {
                continue;
            }
            chans[n] = lc.0;
            n += 1;
            hops += 1;
        }
        let cls = &mut out[hops];
        cls.count += 1.0;
        for &ch in &chans[..n] {
            *cls.usage.entry(ch).or_default() += 1.0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tugal_routing::all_vlb_paths;
    use tugal_topology::DragonflyParams;

    fn topo(p: u32, a: u32, h: u32, g: u32) -> Dragonfly {
        Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap()
    }

    #[test]
    fn min_stats_match_enumeration() {
        let t = topo(4, 8, 4, 9);
        let stats = PairStats::compute(&t, SwitchId(0), SwitchId(9));
        let min = tugal_routing::min_paths(&t, SwitchId(0), SwitchId(9));
        assert_eq!(stats.min_count, min.len() as f64);
        let total_usage: f64 = stats.min_usage.iter().map(|&(_, u)| u).sum();
        let total_hops: usize = min.iter().map(|p| p.hops()).sum();
        assert_eq!(total_usage, total_hops as f64);
    }

    #[test]
    fn vlb_realization_count_matches_structure() {
        // dfly(2,4,2,3): 2 intermediate-group candidates? no: g=3, endpoints
        // in 2 groups -> 1 intermediate group with 4 switches; 4 links per
        // group pair -> per intermediate 4x4 = 16 realizations -> 64 total.
        let t = topo(2, 4, 2, 3);
        let stats = PairStats::compute(&t, SwitchId(0), SwitchId(4));
        assert_eq!(stats.total_count(), 64.0);
    }

    #[test]
    fn class_totals_match_enumerated_multiplicities() {
        // Enumerating realizations directly (not deduped): compare against
        // vlb_paths_via which returns one path per (gateway, gateway) combo.
        let t = topo(4, 8, 4, 9);
        let (s, d) = (SwitchId(0), SwitchId(9));
        let stats = PairStats::compute(&t, s, d);
        let mut counts = [0f64; 8];
        for gi in 0..9u32 {
            let gi = GroupId(gi);
            if gi == t.group_of(s) || gi == t.group_of(d) {
                continue;
            }
            for i in t.switches_in_group(gi) {
                for p in tugal_routing::vlb_paths_via(&t, s, d, i) {
                    counts[p.hops()] += 1.0;
                }
            }
        }
        for h in 2..=6 {
            assert_eq!(stats.class_count(h), counts[h], "class {h}");
        }
    }

    #[test]
    fn usage_sums_equal_hops_times_counts() {
        let t = topo(4, 8, 4, 9);
        let stats = PairStats::compute(&t, SwitchId(3), SwitchId(20));
        for c1 in 1..=3usize {
            for c2 in 1..=3usize {
                let count = stats.combo_count[c1][c2];
                let usage: f64 = stats.combo_usage[c1][c2].iter().map(|&(_, u)| u).sum();
                assert!(
                    (usage - count * (c1 + c2) as f64).abs() < 1e-9,
                    "combo ({c1},{c2}): usage {usage} count {count}"
                );
            }
        }
    }

    #[test]
    fn mean_hops_close_to_six_on_maximal_topology() {
        let t = topo(4, 8, 4, 33);
        let stats = PairStats::compute(&t, SwitchId(0), SwitchId(8));
        assert!(stats.mean_vlb_hops() > 5.3, "{}", stats.mean_vlb_hops());
    }

    #[test]
    fn mean_hops_lower_on_dense_topology() {
        let t = topo(4, 8, 4, 9);
        let stats = PairStats::compute(&t, SwitchId(0), SwitchId(8));
        let dense = stats.mean_vlb_hops();
        let t33 = topo(4, 8, 4, 33);
        let sparse = PairStats::compute(&t33, SwitchId(0), SwitchId(8)).mean_vlb_hops();
        assert!(dense < sparse, "{dense} !< {sparse}");
    }

    #[test]
    fn usage_channels_are_network_channels() {
        let t = topo(2, 4, 2, 9);
        let stats = PairStats::compute(&t, SwitchId(0), SwitchId(5));
        for (c, _) in &stats.min_usage {
            assert!(c.index() < t.num_network_channels());
        }
        for row in &stats.combo_usage {
            for usage in row {
                for (c, _) in usage {
                    assert!(c.index() < t.num_network_channels());
                }
            }
        }
    }

    #[test]
    fn enumeration_cross_check_channel_usage() {
        // Channel usage from separable stats must equal brute-force
        // enumeration over realizations.
        let t = topo(2, 4, 2, 5);
        let (s, d) = (SwitchId(0), SwitchId(6));
        let stats = PairStats::compute(&t, s, d);
        let mut brute: HashMap<u32, f64> = HashMap::new();
        for gi in 0..5u32 {
            let gi = GroupId(gi);
            if gi == t.group_of(s) || gi == t.group_of(d) {
                continue;
            }
            for i in t.switches_in_group(gi) {
                for p in tugal_routing::vlb_paths_via(&t, s, d, i) {
                    for ch in p.channels(&t) {
                        *brute.entry(ch.0).or_default() += 1.0;
                    }
                }
            }
        }
        let mut from_stats: HashMap<u32, f64> = HashMap::new();
        for row in &stats.combo_usage {
            for usage in row {
                for &(c, u) in usage {
                    *from_stats.entry(c.0).or_default() += u;
                }
            }
        }
        assert_eq!(brute.len(), from_stats.len());
        for (c, u) in brute {
            let v = from_stats[&c];
            assert!((u - v).abs() < 1e-9, "channel {c}: {u} vs {v}");
        }
    }

    #[test]
    fn all_vlb_is_superset_of_deduped_enumeration() {
        let t = topo(2, 4, 2, 9);
        let stats = PairStats::compute(&t, SwitchId(0), SwitchId(4));
        let deduped = all_vlb_paths(&t, SwitchId(0), SwitchId(4));
        assert!(stats.total_count() >= deduped.len() as f64);
    }
}
