//! The throughput LP assembled from [`PairStats`].
//!
//! Solves go through the sparse revised simplex of `tugal-lp`
//! (`LinearProgram::solve_sparse`); the dense tableau solver remains
//! available as the differential oracle the test layer compares against.
//! Chained solves — rule sweeps inside [`modeled_throughput_multi`],
//! `FaultSet` superset chains, zoo lag sweeps — thread a
//! [`ModelWarmCache`] through consecutive programs: the cache stores the
//! previous optimal basis in a *model-level key space* (pairs and
//! channels rather than raw variable indices), remaps it onto the next
//! program, and accumulates [`LpStats`] counters so harnesses can report
//! pivot counts and warm-start hit rates.

use crate::stats::PairStats;
use rayon::prelude::*;
use std::collections::HashMap;
use std::time::Instant;
use tugal_lp::{BasisVar, LinearProgram, Relation, SolveError, WarmStart};
use tugal_routing::VlbRule;
use tugal_topology::{ChannelId, Degraded, Dragonfly, SwitchId};

/// Cumulative LP solve counters, accumulated by every solve that threads
/// a [`ModelWarmCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LpStats {
    /// LP solves performed.
    pub solves: usize,
    /// Simplex pivots across all solves.
    pub pivots: usize,
    /// Basis refactorizations across all solves.
    pub refactorizations: usize,
    /// Solves that entered with a non-empty warm basis.
    pub warm_attempts: usize,
    /// Warm attempts whose basis was accepted (no cold fallback).
    pub warm_hits: usize,
    /// Wall-clock spent inside the LP solver, in milliseconds.
    pub wall_ms: f64,
}

impl LpStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &LpStats) {
        self.solves += other.solves;
        self.pivots += other.pivots;
        self.refactorizations += other.refactorizations;
        self.warm_attempts += other.warm_attempts;
        self.warm_hits += other.warm_hits;
        self.wall_ms += other.wall_ms;
    }
}

/// Identity of an LP variable across structurally-similar model solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VarKey {
    Theta,
    Pair(u32, u32),
}

/// Identity of an LP row across structurally-similar model solves.  A
/// capacity row (which the builder deduplicates across symmetric
/// channels) is named by the lowest channel id it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RowKey {
    ThetaCap,
    Demand(u32, u32),
    Guard(u32, u32),
    Capacity(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KeyedBasisVar {
    Var(VarKey),
    Row(RowKey),
}

/// Warm-start carrier for chained draw-proportional model solves.
///
/// Thread one cache through a sequence of structurally-similar solves
/// (a rule sweep, a rate sweep, a `FaultSet` superset chain): each solve
/// seeds the simplex with the previous optimal basis — translated through
/// stable pair/channel keys, so renumbered variables and dropped columns
/// remap or fall away cleanly — and updates [`ModelWarmCache::stats`].
/// Warm starting never changes the optimum (a rejected basis falls back
/// to a cold start); it only cuts the pivot count.
#[derive(Debug, Clone, Default)]
pub struct ModelWarmCache {
    entries: Vec<KeyedBasisVar>,
    /// Cumulative solve counters across the chained solves.
    pub stats: LpStats,
}

impl ModelWarmCache {
    /// Empty cache: the first solve through it is cold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached basis (counters survive); the next solve is cold.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Whether a basis is cached (the next solve will attempt a warm
    /// start).
    pub fn has_basis(&self) -> bool {
        !self.entries.is_empty()
    }
}

/// Which reconstruction of the UGAL allocation behaviour to solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelVariant {
    /// VLB traffic of a pair spreads uniformly over its candidate set —
    /// UGAL's single uniform candidate draw at saturation.  Default.
    ///
    /// Because the allocation is *forced* (not free), this variant is not
    /// superset-monotone, and on dense topologies it reproduces Figure 4's
    /// arc: a steep rise, a local peak in the 40–60% 5-hop region, a dip
    /// around "5-hop paths", and ~0.56 at "all VLB paths" — all within a
    /// ~1% band at the top, so Algorithm 1 still defers the final pick
    /// among near-tied candidates to the Step-2 simulation (see
    /// DESIGN.md §4).
    DrawProportional,
    /// Per-class VLB rates are free subject to the paper's monotonicity
    /// modification (per-path rate of a longer class never exceeds that of
    /// a shorter class).  Ablation variant: being a relaxation it can only
    /// score higher, and it cannot penalize oversized candidate sets.
    MonotoneClasses,
}

/// Model failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The pattern has no demands (nothing to route).
    EmptyPattern,
    /// The underlying LP failed (numerical trouble).
    Lp(SolveError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::EmptyPattern => write!(f, "pattern has no demands"),
            ModelError::Lp(e) => write!(f, "LP solve failed: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Weight of each (seg1, seg2) combination under a rule: the fraction of
/// that combination's realizations that are candidates.
fn combo_weights(rule: VlbRule, stats: &PairStats) -> [[f64; 4]; 4] {
    let mut w = [[0.0; 4]; 4];
    for c1 in 1..=3usize {
        for c2 in 1..=3usize {
            let hops = c1 + c2;
            w[c1][c2] = match rule {
                VlbRule::All => 1.0,
                VlbRule::ClassLimit {
                    max_hops,
                    frac_next,
                } => {
                    if hops <= max_hops as usize {
                        1.0
                    } else if hops == max_hops as usize + 1 {
                        frac_next
                    } else {
                        0.0
                    }
                }
                VlbRule::Strategic { first_seg } => {
                    let keep = hops <= 4 || (hops == 5 && c1 == first_seg as usize);
                    if keep {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
        }
    }
    // Mirror the path-table fallback: if the rule empties the pair, keep
    // the shortest non-empty class.
    let total: f64 = (1..=3)
        .flat_map(|c1| (1..=3).map(move |c2| (c1, c2)))
        .map(|(c1, c2)| w[c1][c2] * stats.combo_count[c1][c2])
        .sum();
    if total <= 0.0 {
        'outer: for hops in 2..=6 {
            for c1 in 1..=3usize {
                let c2 = hops as isize - c1 as isize;
                if (1..=3).contains(&c2) && stats.combo_count[c1][c2 as usize] > 0.0 {
                    w[c1][c2 as usize] = 1.0;
                }
            }
            if (1..=3)
                .flat_map(|c1| (1..=3).map(move |c2| (c1, c2)))
                .any(|(c1, c2)| w[c1][c2] > 0.0 && stats.combo_count[c1][c2] > 0.0)
            {
                break 'outer;
            }
        }
    }
    w
}

/// Modeled saturation throughput (flits/cycle/node) of `pattern_demands`
/// under the given candidate rule.
///
/// `pattern_demands` are switch-level `(src, dst, node_flows)` triples as
/// produced by `tugal_traffic::TrafficPattern::demands`.
pub fn modeled_throughput(
    topo: &Dragonfly,
    pattern_demands: &[(u32, u32, u32)],
    rule: VlbRule,
    variant: ModelVariant,
) -> Result<f64, ModelError> {
    modeled_throughput_multi(topo, pattern_demands, &[rule], variant).map(|v| v[0])
}

/// [`modeled_throughput`] with warm-start chaining: the solve seeds the
/// simplex from `cache` (when it holds a basis) and leaves its own optimal
/// basis behind for the next structurally-similar solve, accumulating
/// [`LpStats`] either way.  Returns exactly what a cold
/// [`modeled_throughput`] returns — warm starting only cuts pivots.
pub fn modeled_throughput_warm(
    topo: &Dragonfly,
    pattern_demands: &[(u32, u32, u32)],
    rule: VlbRule,
    variant: ModelVariant,
    cache: &mut ModelWarmCache,
) -> Result<f64, ModelError> {
    if pattern_demands.is_empty() {
        return Err(ModelError::EmptyPattern);
    }
    let stats: Vec<PairStats> = pattern_demands
        .par_iter()
        .map(|&(s, d, _)| PairStats::compute(topo, SwitchId(s), SwitchId(d)))
        .collect();
    solve_one(topo, pattern_demands, &stats, rule, variant, Some(cache))
}

/// [`modeled_throughput`] for several rules at once, computing the per-pair
/// statistics (the expensive part) only once and warm-starting each rule's
/// solve from the previous one's basis (the programs share their variables
/// and most rows, so the chain skips phase 1 and most pivots).
pub fn modeled_throughput_multi(
    topo: &Dragonfly,
    pattern_demands: &[(u32, u32, u32)],
    rules: &[VlbRule],
    variant: ModelVariant,
) -> Result<Vec<f64>, ModelError> {
    if pattern_demands.is_empty() {
        return Err(ModelError::EmptyPattern);
    }
    let stats: Vec<PairStats> = pattern_demands
        .par_iter()
        .map(|&(s, d, _)| PairStats::compute(topo, SwitchId(s), SwitchId(d)))
        .collect();
    let mut cache = ModelWarmCache::new();
    rules
        .iter()
        .map(|&rule| {
            solve_one(
                topo,
                pattern_demands,
                &stats,
                rule,
                variant,
                Some(&mut cache),
            )
        })
        .collect()
}

/// Outcome of a degraded-topology throughput solve: the modeled saturation
/// rate of the pairs that remain reachable, plus accounting of the pairs
/// the failures disconnected.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedThroughput {
    /// Modeled saturation throughput (flits/cycle/node) over the reachable
    /// pairs.
    pub theta: f64,
    /// Demand pairs left without any surviving candidate path (excluded
    /// from the LP — the simulator drops their packets).
    pub unreachable_pairs: usize,
    /// Demand pairs that kept at least one surviving candidate.
    pub reachable_pairs: usize,
}

/// [`modeled_throughput`] on a degraded view of the topology: per-pair
/// statistics count only surviving candidates ([`PairStats::compute_degraded`]),
/// disconnected pairs are excluded (and reported), and a pair whose MIN
/// candidates all died has its MIN rate pinned to zero so the optimizer
/// cannot credit it with phantom minimal capacity.
///
/// With a pristine `deg` (no failures) this reduces exactly to
/// [`modeled_throughput`]: the statistics are identical, no pair is
/// excluded, and no guard row is added.
pub fn modeled_throughput_degraded(
    topo: &Dragonfly,
    deg: &Degraded,
    pattern_demands: &[(u32, u32, u32)],
    rule: VlbRule,
    variant: ModelVariant,
) -> Result<DegradedThroughput, ModelError> {
    modeled_throughput_degraded_impl(topo, deg, pattern_demands, rule, variant, None)
}

/// [`modeled_throughput_degraded`] with warm-start chaining through
/// `cache` — built for `FaultSet` superset chains, where consecutive
/// solves differ only in the few pairs/rows the newly-dead channels
/// touched.  Basis members naming dropped pairs or vanished capacity rows
/// fall away in the remap and the factorization repairs the holes, so the
/// result is identical to the cold solve.
pub fn modeled_throughput_degraded_warm(
    topo: &Dragonfly,
    deg: &Degraded,
    pattern_demands: &[(u32, u32, u32)],
    rule: VlbRule,
    variant: ModelVariant,
    cache: &mut ModelWarmCache,
) -> Result<DegradedThroughput, ModelError> {
    modeled_throughput_degraded_impl(topo, deg, pattern_demands, rule, variant, Some(cache))
}

fn modeled_throughput_degraded_impl(
    topo: &Dragonfly,
    deg: &Degraded,
    pattern_demands: &[(u32, u32, u32)],
    rule: VlbRule,
    variant: ModelVariant,
    warm: Option<&mut ModelWarmCache>,
) -> Result<DegradedThroughput, ModelError> {
    if pattern_demands.is_empty() {
        return Err(ModelError::EmptyPattern);
    }
    let stats: Vec<PairStats> = pattern_demands
        .par_iter()
        .map(|&(s, d, _)| PairStats::compute_degraded(topo, deg, SwitchId(s), SwitchId(d)))
        .collect();
    // Pairs whose entire candidate set died cannot constrain θ; the
    // simulator counts their packets as drops, and the model mirrors that
    // by solving over the survivors only.
    let mut demands = Vec::new();
    let mut kept = Vec::new();
    for (&dm, st) in pattern_demands.iter().zip(&stats) {
        if st.min_count == 0.0 && st.total_count() == 0.0 {
            continue;
        }
        demands.push(dm);
        kept.push(st.clone());
    }
    let unreachable_pairs = pattern_demands.len() - demands.len();
    if demands.is_empty() {
        return Ok(DegradedThroughput {
            theta: 0.0,
            unreachable_pairs,
            reachable_pairs: 0,
        });
    }
    let theta = solve_one(topo, &demands, &kept, rule, variant, warm)?;
    Ok(DegradedThroughput {
        theta,
        unreachable_pairs,
        reachable_pairs: demands.len(),
    })
}

fn solve_one(
    topo: &Dragonfly,
    demands: &[(u32, u32, u32)],
    stats: &[PairStats],
    rule: VlbRule,
    variant: ModelVariant,
    warm: Option<&mut ModelWarmCache>,
) -> Result<f64, ModelError> {
    match variant {
        ModelVariant::DrawProportional => {
            solve_draw_proportional_full(topo, demands, stats, rule, None, None, warm)
        }
        ModelVariant::MonotoneClasses => solve_monotone(topo, demands, stats, rule, warm),
    }
}

/// Primal-side view of a draw-proportional solve, for validation and
/// diagnostics: the optimum, the per-pair MIN rates, and the load *every*
/// used channel carries under the solved allocation — including channels
/// whose capacity rows were pruned as provably redundant, so a feasibility
/// check over this view also validates the pruning.
#[derive(Debug, Clone)]
pub struct ModelPrimal {
    /// Modeled saturation throughput (flits/cycle/node).
    pub theta: f64,
    /// Per demand pair (in input order): the solved MIN rate `m`; the
    /// pair's VLB rate is `θ·d − m`.
    pub min_rates: Vec<f64>,
    /// `(channel, load)` under the solved rates, for every channel any
    /// candidate path touches.  Capacities are 1 (plus the documented
    /// `≤ 1e-4` anti-degeneracy jitter), so feasibility means every load
    /// is below ~1.0002.
    pub channel_load: Vec<(ChannelId, f64)>,
}

/// [`modeled_throughput`] (draw-proportional variant) returning the primal
/// solution alongside `θ` — see [`ModelPrimal`].
pub fn modeled_primal(
    topo: &Dragonfly,
    pattern_demands: &[(u32, u32, u32)],
    rule: VlbRule,
) -> Result<ModelPrimal, ModelError> {
    if pattern_demands.is_empty() {
        return Err(ModelError::EmptyPattern);
    }
    let stats: Vec<PairStats> = pattern_demands
        .par_iter()
        .map(|&(s, d, _)| PairStats::compute(topo, SwitchId(s), SwitchId(d)))
        .collect();
    let mut primal = ModelPrimal {
        theta: 0.0,
        min_rates: Vec::new(),
        channel_load: Vec::new(),
    };
    let theta = solve_draw_proportional_full(
        topo,
        pattern_demands,
        &stats,
        rule,
        None,
        Some(&mut primal),
        None,
    )?;
    primal.theta = theta;
    Ok(primal)
}

/// The draw-proportional path-rate [`LinearProgram`] that
/// [`modeled_primal`] solves, exposed (unsolved) for the dense-vs-sparse
/// differential test layer in `tugal-lp`.
pub fn modeled_primal_lp(
    topo: &Dragonfly,
    pattern_demands: &[(u32, u32, u32)],
    rule: VlbRule,
) -> Result<LinearProgram, ModelError> {
    if pattern_demands.is_empty() {
        return Err(ModelError::EmptyPattern);
    }
    let stats: Vec<PairStats> = pattern_demands
        .par_iter()
        .map(|&(s, d, _)| PairStats::compute(topo, SwitchId(s), SwitchId(d)))
        .collect();
    Ok(build_draw_proportional(pattern_demands, &stats, rule, false).lp)
}

/// Modeled throughput plus the *bottleneck channels*: the capacity rows
/// with positive shadow price at the optimum, sorted by how much an extra
/// unit of their capacity would raise `θ`.  Draw-proportional variant
/// only.  For an adversarial shift these are the saturated global links.
pub fn modeled_bottlenecks(
    topo: &Dragonfly,
    pattern_demands: &[(u32, u32, u32)],
    rule: VlbRule,
) -> Result<(f64, Vec<(ChannelId, f64)>), ModelError> {
    if pattern_demands.is_empty() {
        return Err(ModelError::EmptyPattern);
    }
    let stats: Vec<PairStats> = pattern_demands
        .par_iter()
        .map(|&(s, d, _)| PairStats::compute(topo, SwitchId(s), SwitchId(d)))
        .collect();
    let mut hot = Vec::new();
    let theta = solve_draw_proportional_full(
        topo,
        pattern_demands,
        &stats,
        rule,
        Some(&mut hot),
        None,
        None,
    )?;
    Ok((theta, hot))
}

/// Accumulates `coef` into a channel-indexed row map.
fn add_usage(
    rows: &mut HashMap<u32, Vec<(tugal_lp::VarId, f64)>>,
    theta_load: &mut HashMap<u32, f64>,
    chan: ChannelId,
    var: Option<(tugal_lp::VarId, f64)>,
    theta_coef: f64,
) {
    if let Some((v, c)) = var {
        if c != 0.0 {
            rows.entry(chan.0).or_default().push((v, c));
        }
    }
    if theta_coef != 0.0 {
        *theta_load.entry(chan.0).or_default() += theta_coef;
    }
}

/// Per-channel usage rows and θ loads before capacity-row pruning,
/// keyed by channel id.
type FullUsage = (HashMap<u32, Vec<(tugal_lp::VarId, f64)>>, HashMap<u32, f64>);

/// The assembled draw-proportional LP plus the metadata the solve layer
/// needs: variable handles, the stable pair/channel keys of every
/// variable and row (for warm-start remapping), the capacity-row ↔
/// channel map (for duals) and — on request — the full pre-pruning usage
/// maps (for the primal view).
struct DrawBuild {
    lp: LinearProgram,
    theta: tugal_lp::VarId,
    m_vars: Vec<tugal_lp::VarId>,
    var_keys: Vec<VarKey>,
    row_keys: Vec<RowKey>,
    row_channels: Vec<(usize, u32)>,
    full_usage: Option<FullUsage>,
}

/// Builds the draw-proportional LP:
///
/// * variables: `θ` and per pair the MIN rate `m` (VLB rate is
///   `θ·d − m`),
/// * per pair: `m ≤ θ·d`,
/// * per channel: `Σ m·(pmin − pvlb) + θ·Σ d·pvlb ≤ 1`,
/// * `θ ≤ 1`; maximize `θ`.
fn build_draw_proportional(
    demands: &[(u32, u32, u32)],
    stats: &[PairStats],
    rule: VlbRule,
    keep_usage: bool,
) -> DrawBuild {
    let mut lp = LinearProgram::new();
    let theta = lp.add_var(1.0);
    let mut var_keys = vec![VarKey::Theta];
    let mut row_keys = vec![RowKey::ThetaCap];
    lp.add_constraint(&[(theta, 1.0)], Relation::Le, 1.0);

    let mut chan_rows: HashMap<u32, Vec<(tugal_lp::VarId, f64)>> = HashMap::new();
    let mut theta_load: HashMap<u32, f64> = HashMap::new();

    let mut m_vars = Vec::with_capacity(demands.len());
    for (&(src, dst, flows), st) in demands.iter().zip(stats) {
        let d = flows as f64;
        // The m objective gets a deterministic negative micro-cost
        // (about 1e-7, far below any θ trade-off): with `maximize θ`
        // alone the optimal m-face is massively degenerate, and warm and
        // cold pivot paths could stop at different vertices of it.  The
        // perturbation makes the optimal *vertex* unique, which —
        // combined with the sparse solver's canonical final
        // refactorization and its sub-tolerance polish pass — is what
        // makes warm-started θ values bit-identical to cold ones.  The
        // full 53-bit hash goes into the mantissa so no two pairs ever
        // collide on the same micro-cost (symmetric patterns produce
        // interchangeable columns, where an exact cost tie would revive
        // the alternate optima).
        // Keyed by the *pair identity*, never a positional index: fault
        // chains drop unreachable pairs from the list, and an index-keyed
        // perturbation would reshuffle the micro-costs of every pair
        // behind the gap, moving the perturbed optimum globally and
        // destroying the locality that warm starts rely on.
        let pk = ((src as u64) << 32) | dst as u64;
        let hc = (pk ^ 0xA5A5_5A5A_1234_5678)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            .wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let u = (hc >> 11) as f64 / (1u64 << 53) as f64;
        let m = lp.add_var(-1e-7 * (0.5 + 0.5 * u));
        m_vars.push(m);
        var_keys.push(VarKey::Pair(src, dst));
        // Tiny positive rhs perturbation keeps the origin vertex
        // non-degenerate (see `add_capacity_rows`); same stable keying,
        // with the full mantissa so no two demand rows ever tie exactly.
        let h = pk
            .wrapping_mul(0xD6E8_FEB8_6659_FD93)
            .rotate_left(23)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let hu = (h >> 11) as f64 / (1u64 << 53) as f64;
        lp.add_constraint(
            &[(m, 1.0), (theta, -d)],
            Relation::Le,
            1e-5 * (0.5 + 0.5 * hu),
        );
        row_keys.push(RowKey::Demand(src, dst));

        let w = combo_weights(rule, st);
        let n_vlb: f64 = (1..=3)
            .flat_map(|c1| (1..=3).map(move |c2| (c1, c2)))
            .map(|(c1, c2)| w[c1][c2] * st.combo_count[c1][c2])
            .sum();

        // A pair with no surviving MIN candidate (degraded topologies
        // only — pristine pairs always have one) must not carry a MIN
        // rate: its `m` has no usage rows, so leaving it free would let
        // the optimizer subtract VLB load without paying for it anywhere.
        if st.min_count == 0.0 {
            lp.add_constraint(&[(m, 1.0)], Relation::Le, 0.0);
            row_keys.push(RowKey::Guard(src, dst));
        }

        // MIN usage: rate m spread over the MIN candidates.
        for &(ch, u) in &st.min_usage {
            let pmin = u / st.min_count;
            add_usage(&mut chan_rows, &mut theta_load, ch, Some((m, pmin)), 0.0);
        }
        // VLB usage: rate (θ·d − m) spread draw-proportionally.
        if n_vlb > 0.0 {
            for c1 in 1..=3usize {
                for c2 in 1..=3usize {
                    let weight = w[c1][c2];
                    if weight == 0.0 {
                        continue;
                    }
                    for &(ch, u) in &st.combo_usage[c1][c2] {
                        let pv = weight * u / n_vlb;
                        add_usage(&mut chan_rows, &mut theta_load, ch, Some((m, -pv)), d * pv);
                    }
                }
            }
        } else {
            // No VLB candidates at all: everything rides MIN.
            for &(ch, u) in &st.min_usage {
                let pmin = u / st.min_count;
                add_usage(
                    &mut chan_rows,
                    &mut theta_load,
                    ch,
                    Some((m, -pmin)),
                    d * pmin,
                );
            }
        }
    }

    let demand_bound = demands
        .iter()
        .map(|&(_, _, f)| f as f64)
        .fold(0.0, f64::max);
    // Keep the full usage map around when the caller wants the primal
    // loads: capacity-row assembly prunes and deduplicates, but the primal
    // view reports every used channel.
    let full_usage = keep_usage.then(|| (chan_rows.clone(), theta_load.clone()));
    let row_channels = add_capacity_rows(&mut lp, theta, chan_rows, theta_load, demand_bound);
    for &(_, ch) in &row_channels {
        row_keys.push(RowKey::Capacity(ch));
    }
    debug_assert_eq!(row_keys.len(), lp.num_constraints());
    lp.set_max_iterations(400_000);
    DrawBuild {
        lp,
        theta,
        m_vars,
        var_keys,
        row_keys,
        row_channels,
        full_usage,
    }
}

/// Translates a cached model-keyed basis onto this build's numbering;
/// `None` when nothing survives the remap (solve cold).
fn warm_start_for(cache: &ModelWarmCache, build: &DrawBuild) -> Option<WarmStart> {
    if cache.entries.is_empty() {
        return None;
    }
    let var_index: HashMap<VarKey, usize> = build
        .var_keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect();
    let row_index: HashMap<RowKey, usize> = build
        .row_keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect();
    let ws = WarmStart::from_entries(
        cache
            .entries
            .iter()
            .filter_map(|e| match e {
                KeyedBasisVar::Var(k) => var_index.get(k).map(|&i| BasisVar::Structural(i)),
                KeyedBasisVar::Row(k) => row_index.get(k).map(|&i| BasisVar::Row(i)),
            })
            .collect(),
    );
    (!ws.is_empty()).then_some(ws)
}

/// Solves a [`DrawBuild`] through the sparse simplex, optionally seeded
/// from — and recorded back into — a [`ModelWarmCache`].
fn solve_build(
    build: &DrawBuild,
    warm: Option<&mut ModelWarmCache>,
) -> Result<tugal_lp::SparseSolution, ModelError> {
    let started = Instant::now();
    let ws = warm.as_ref().and_then(|cache| warm_start_for(cache, build));
    let sol = match &ws {
        Some(w) => build.lp.solve_sparse_warm(w),
        None => build.lp.solve_sparse(),
    }
    .map_err(ModelError::Lp)?;
    if let Some(cache) = warm {
        cache.stats.solves += 1;
        cache.stats.pivots += sol.pivots;
        cache.stats.refactorizations += sol.refactorizations;
        if ws.is_some() {
            cache.stats.warm_attempts += 1;
            if sol.warm_used {
                cache.stats.warm_hits += 1;
            }
        }
        cache.stats.wall_ms += started.elapsed().as_secs_f64() * 1e3;
        cache.entries = sol
            .warm_start()
            .entries()
            .iter()
            .map(|&b| match b {
                BasisVar::Structural(i) => KeyedBasisVar::Var(build.var_keys[i]),
                BasisVar::Row(r) => KeyedBasisVar::Row(build.row_keys[r]),
            })
            .collect();
    }
    Ok(sol)
}

fn solve_draw_proportional_full(
    _topo: &Dragonfly,
    demands: &[(u32, u32, u32)],
    stats: &[PairStats],
    rule: VlbRule,
    bottlenecks_out: Option<&mut Vec<(ChannelId, f64)>>,
    primal_out: Option<&mut ModelPrimal>,
    warm: Option<&mut ModelWarmCache>,
) -> Result<f64, ModelError> {
    let build = build_draw_proportional(demands, stats, rule, primal_out.is_some());
    let sol = solve_build(&build, warm)?;
    let theta = build.theta;
    if let Some(out) = primal_out {
        let (rows, tload) = build.full_usage.as_ref().expect("usage kept for primal");
        out.min_rates = build.m_vars.iter().map(|&m| sol.value(m)).collect();
        let mut channels: Vec<u32> = rows.keys().chain(tload.keys()).copied().collect();
        channels.sort_unstable();
        channels.dedup();
        out.channel_load = channels
            .into_iter()
            .map(|ch| {
                let mut load = tload.get(&ch).copied().unwrap_or(0.0) * sol.value(theta);
                if let Some(terms) = rows.get(&ch) {
                    for &(v, c) in terms {
                        load += c * sol.value(v);
                    }
                }
                (ChannelId(ch), load)
            })
            .collect();
    }
    if let Some(out) = bottlenecks_out {
        let mut hot: Vec<(ChannelId, f64)> = build
            .row_channels
            .iter()
            .filter_map(|&(row, ch)| {
                let y = sol.duals()[row];
                // Threshold sits above the 1e-7 tie-breaking perturbation on
                // the m-var costs (see `build_draw_proportional`), which
                // shows up in the duals of non-binding rows; genuinely
                // binding capacity rows carry shadow prices of order 1/θ.
                (y > 1e-6).then_some((ChannelId(ch), y))
            })
            .collect();
        hot.sort_by(|a, b| b.1.total_cmp(&a.1));
        *out = hot;
    }
    Ok(sol.value(theta))
}

/// The monotone-classes ablation variant: per pair, per hop class `c`, a
/// free rate `v_c ≥ 0` with `Σ v_c ≤ θ·d` (MIN takes the rest) and
/// per-path monotonicity between consecutive classes.
fn solve_monotone(
    _topo: &Dragonfly,
    demands: &[(u32, u32, u32)],
    stats: &[PairStats],
    rule: VlbRule,
    warm: Option<&mut ModelWarmCache>,
) -> Result<f64, ModelError> {
    let mut lp = LinearProgram::new();
    let theta = lp.add_var(1.0);
    lp.add_constraint(&[(theta, 1.0)], Relation::Le, 1.0);

    let mut chan_rows: HashMap<u32, Vec<(tugal_lp::VarId, f64)>> = HashMap::new();
    let mut theta_load: HashMap<u32, f64> = HashMap::new();

    for (&(_, _, flows), st) in demands.iter().zip(stats) {
        let d = flows as f64;
        let w = combo_weights(rule, st);

        // Effective class counts and usages under the rule.
        let mut class_n = [0.0f64; 7];
        let mut class_usage: [HashMap<u32, f64>; 7] = Default::default();
        for c1 in 1..=3usize {
            for c2 in 1..=3usize {
                let weight = w[c1][c2];
                if weight == 0.0 {
                    continue;
                }
                let h = c1 + c2;
                class_n[h] += weight * st.combo_count[c1][c2];
                for &(ch, u) in &st.combo_usage[c1][c2] {
                    *class_usage[h].entry(ch.0).or_default() += weight * u;
                }
            }
        }

        let classes: Vec<usize> = (2..=6).filter(|&h| class_n[h] > 0.0).collect();
        let vs: Vec<tugal_lp::VarId> = classes.iter().map(|_| lp.add_var(0.0)).collect();

        // Σ v_c ≤ θ·d.
        let mut terms: Vec<(tugal_lp::VarId, f64)> = vs.iter().map(|&v| (v, 1.0)).collect();
        terms.push((theta, -d));
        lp.add_constraint(&terms, Relation::Le, 0.0);

        // No surviving MIN candidate (degraded topologies only): the
        // residual θ·d − Σ v_c would ride nothing, so force the VLB rates
        // to carry the whole demand (Σ v_c ≥ θ·d, i.e. equality).
        if st.min_count == 0.0 {
            let mut lb: Vec<(tugal_lp::VarId, f64)> = vs.iter().map(|&v| (v, -1.0)).collect();
            lb.push((theta, d));
            lp.add_constraint(&lb, Relation::Le, 0.0);
        }

        // Monotonicity between consecutive present classes.
        for k in 1..classes.len() {
            let (short, long) = (classes[k - 1], classes[k]);
            lp.add_constraint(
                &[
                    (vs[k], 1.0 / class_n[long]),
                    (vs[k - 1], -1.0 / class_n[short]),
                ],
                Relation::Le,
                0.0,
            );
        }

        // MIN usage for rate (θ·d − Σ v_c).
        for &(ch, u) in &st.min_usage {
            let pmin = u / st.min_count;
            add_usage(&mut chan_rows, &mut theta_load, ch, None, d * pmin);
            for &v in &vs {
                add_usage(&mut chan_rows, &mut theta_load, ch, Some((v, -pmin)), 0.0);
            }
        }
        // Per-class VLB usage.
        for (k, &h) in classes.iter().enumerate() {
            for (&ch, &u) in &class_usage[h] {
                let p = u / class_n[h];
                add_usage(
                    &mut chan_rows,
                    &mut theta_load,
                    ChannelId(ch),
                    Some((vs[k], p)),
                    0.0,
                );
            }
        }
    }

    let demand_bound = demands
        .iter()
        .map(|&(_, _, f)| f as f64)
        .fold(0.0, f64::max);
    let _ = add_capacity_rows(&mut lp, theta, chan_rows, theta_load, demand_bound);
    lp.set_max_iterations(400_000);
    // The monotone ablation shares no variable key space with the
    // draw-proportional programs, so it always solves cold; it still
    // contributes to the chain's counters, and it invalidates any cached
    // basis so a following draw-proportional solve does not inherit a
    // foreign one.
    let started = Instant::now();
    let sol = lp.solve_sparse().map_err(ModelError::Lp)?;
    if let Some(cache) = warm {
        cache.stats.solves += 1;
        cache.stats.pivots += sol.pivots;
        cache.stats.refactorizations += sol.refactorizations;
        cache.stats.wall_ms += started.elapsed().as_secs_f64() * 1e3;
        cache.clear();
    }
    Ok(sol.value(theta))
}

/// Adds one capacity row per channel, deduplicating identical rows (the
/// symmetric topology produces many) and dropping rows that cannot bind
/// given that every rate variable is at most `demand_bound` and `θ ≤ 1`.
fn add_capacity_rows(
    lp: &mut LinearProgram,
    theta: tugal_lp::VarId,
    chan_rows: HashMap<u32, Vec<(tugal_lp::VarId, f64)>>,
    theta_load: HashMap<u32, f64>,
    demand_bound: f64,
) -> Vec<(usize, u32)> {
    let mut row_channels = Vec::new();
    let mut channels: Vec<u32> = chan_rows.keys().chain(theta_load.keys()).copied().collect();
    channels.sort_unstable();
    channels.dedup();

    let mut seen: HashMap<Vec<(usize, u64)>, ()> = HashMap::new();
    for ch in channels {
        let mut merged: Vec<(tugal_lp::VarId, f64)> = Vec::new();
        if let Some(terms) = chan_rows.get(&ch) {
            let mut terms = terms.clone();
            terms.sort_unstable_by_key(|&(v, _)| v.0);
            for (v, c) in terms {
                match merged.last_mut() {
                    Some((lv, lc)) if *lv == v => *lc += c,
                    _ => merged.push((v, c)),
                }
            }
        }
        if let Some(&tl) = theta_load.get(&ch) {
            if tl != 0.0 {
                merged.push((theta, tl));
            }
        }
        merged.retain(|&(_, c)| c.abs() > 1e-12);
        if merged.is_empty() {
            continue;
        }
        // Prefilter rows that can never bind: every variable (θ and the
        // per-pair rates, all bounded by the demand) is at most its demand,
        // and θ ≤ 1, so an upper bound on the row's lhs below the capacity
        // of 1 makes the row redundant.  `m ≤ θ·d ≤ d` and the per-class
        // rates are likewise ≤ d; using |coef|·d as the bound is safe.
        // The θ coefficient is bounded by θ ≤ 1.  Demands enter the row
        // coefficients already scaled, so a conservative per-var bound of
        // `demand_max` is applied by the caller through the coefficients
        // themselves; here variables are bounded by the largest demand any
        // pattern uses, which the builders encode by keeping coefficients
        // multiplied by d only on the θ term.  A simple sound bound:
        // Σ max(coef, 0) · d_max + max(θcoef, 0).
        //
        // (Rows dropped here are exactly the lightly-used local channels
        // far from any hot spot; dropping them cuts the tableau several-
        // fold on large topologies.)
        let theta_coef = merged
            .iter()
            .find(|&&(v, _)| v == theta)
            .map(|&(_, c)| c)
            .unwrap_or(0.0);
        let var_bound: f64 = merged
            .iter()
            .filter(|&&(v, _)| v != theta)
            .map(|&(_, c)| c.max(0.0) * demand_bound)
            .sum();
        if var_bound + theta_coef.max(0.0) < 0.999 {
            continue;
        }
        let key: Vec<(usize, u64)> = merged
            .iter()
            .map(|&(v, c)| (v.0, (c * 1e12).round() as i64 as u64))
            .collect();
        if seen.insert(key, ()).is_none() {
            // Deterministic micro-perturbation of the rhs breaks the heavy
            // degeneracy of the symmetric topology (many channel rows would
            // otherwise tie in every ratio test, stalling the simplex).
            // The induced throughput error is below 1e-6 — far inside the
            // model's own accuracy.  Keyed by the stable channel id, NOT a
            // row counter: under a fault chain, dead channels drop rows,
            // and a counter-keyed jitter would hand every surviving row a
            // fresh rhs, shifting the perturbed optimum on the entire
            // network and costing warm starts their locality.  The full
            // mantissa (rather than a coarse lattice) keeps any two rows
            // from colliding on the same jitter, which would revive the
            // degenerate ratio-test ties this exists to break.
            let h = ((ch as u64) ^ 0xCAB1_E0F5_ECAB_1E05)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            let hu = (h >> 11) as f64 / (1u64 << 53) as f64;
            let rhs = 1.0 + 1e-4 * (0.5 + 0.5 * hu);
            row_channels.push((lp.num_constraints(), ch));
            lp.add_constraint(&merged, Relation::Le, rhs);
        }
    }
    row_channels
}
