//! Model behaviour tests: sanity bounds and the qualitative shapes the
//! paper's Step-1 estimation relies on.

use crate::*;
use tugal_routing::VlbRule;
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern};

fn topo(p: u32, a: u32, h: u32, g: u32) -> Dragonfly {
    Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap()
}

fn shift_demands(t: &Dragonfly, dg: u32, ds: u32) -> Vec<(u32, u32, u32)> {
    Shift::new(t, dg, ds).demands().unwrap()
}

#[test]
fn throughput_is_in_unit_interval() {
    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 1, 0);
    let th = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert!(th > 0.0 && th <= 1.0, "{th}");
}

#[test]
fn adversarial_shift_beats_min_only_via_vlb() {
    // With only 1 global link between groups and 8 nodes sending to one
    // other group, MIN alone caps at 1/8 = 0.125; VLB must lift it.
    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 1, 0);
    let th = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert!(th > 0.2, "{th}");
}

#[test]
fn draw_proportional_plateaus_on_dense_topology() {
    // dfly(4,8,4,9), Figure 4's shape under our reconstruction: a steep
    // rise from the smallest sets to a plateau where "60% 5-hop" and "all
    // VLB paths" are within ~1% of each other (the Step-2 simulation then
    // separates them; see DESIGN.md §4).
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 2, 0);
    let rules = [
        VlbRule::ClassLimit {
            max_hops: 3,
            frac_next: 0.0,
        },
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.6,
        },
        VlbRule::All,
    ];
    let th = modeled_throughput_multi(&t, &d, &rules, ModelVariant::DrawProportional).unwrap();
    let (small, mid, all) = (th[0], th[1], th[2]);
    assert!(
        (mid - all).abs() < 0.015 * all.max(1e-9),
        "restricted set should be on the plateau with all-VLB: {mid} vs {all}"
    );
    assert!(
        mid > small + 0.02,
        "tiny set should fall well below the plateau: {mid} vs {small}"
    );
}

#[test]
fn all_vlb_wins_on_maximal_topology() {
    // dfly(4,8,4,33): Figure 5 — all VLB paths are needed; restrictions
    // lose throughput.
    let t = topo(4, 8, 4, 33);
    let d = shift_demands(&t, 1, 0);
    let rules = [
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.0,
        },
        VlbRule::ClassLimit {
            max_hops: 5,
            frac_next: 0.0,
        },
        VlbRule::All,
    ];
    let th = modeled_throughput_multi(&t, &d, &rules, ModelVariant::DrawProportional).unwrap();
    assert!(
        th[2] >= th[1] && th[2] >= th[0],
        "all-VLB must win on the maximal topology: {th:?}"
    );
    assert!(th[2] > th[0] + 0.02, "restriction should hurt: {th:?}");
}

#[test]
fn monotone_variant_is_a_relaxation() {
    // The monotone variant can only do better or equal — it frees the
    // allocation that draw-proportional pins.
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 1, 0);
    for rule in [
        VlbRule::All,
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.5,
        },
    ] {
        let dp = modeled_throughput(&t, &d, rule, ModelVariant::DrawProportional).unwrap();
        let mc = modeled_throughput(&t, &d, rule, ModelVariant::MonotoneClasses).unwrap();
        assert!(mc >= dp - 1e-6, "monotone {mc} < draw-proportional {dp}");
    }
}

#[test]
fn monotone_variant_cannot_reproduce_the_hump() {
    // Documented ablation: under the relaxed (literal) reading, supersets
    // never lose, so Figure 4's decline cannot appear.
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 2, 0);
    let restricted = modeled_throughput(
        &t,
        &d,
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.6,
        },
        ModelVariant::MonotoneClasses,
    )
    .unwrap();
    let all = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::MonotoneClasses).unwrap();
    assert!(all >= restricted - 1e-6, "{all} vs {restricted}");
}

#[test]
fn strategic_rules_are_competitive_at_five_hops() {
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 2, 0);
    let rules = [
        VlbRule::Strategic { first_seg: 2 },
        VlbRule::Strategic { first_seg: 3 },
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.5,
        },
    ];
    let th = modeled_throughput_multi(&t, &d, &rules, ModelVariant::DrawProportional).unwrap();
    for (r, v) in rules.iter().zip(&th) {
        assert!(*v > 0.3, "{r:?} scored {v}");
    }
    // The strategic choices approximate the 50% point.
    assert!((th[0] - th[2]).abs() < 0.15, "{th:?}");
}

#[test]
fn uniform_like_pattern_scores_high() {
    // A switch permutation that is NOT group-adversarial (destination in a
    // different group for each switch, spread out) gives near-full
    // throughput via MIN.
    let t = topo(2, 4, 2, 9);
    // shift by one switch position globally: switch s -> s + a (next
    // group, same position): that IS adversarial.  Instead use a spread
    // permutation: switch s -> (s * 5 + 1) mod 36 filtered to cross-group.
    let mut demands = Vec::new();
    for s in 0..36u32 {
        let d = (s * 5 + 1) % 36;
        if d != s {
            demands.push((s, d, 2));
        }
    }
    let th =
        modeled_throughput(&t, &demands, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert!(th > 0.4, "{th}");
}

#[test]
fn empty_pattern_is_an_error() {
    let t = topo(2, 4, 2, 9);
    assert_eq!(
        modeled_throughput(&t, &[], VlbRule::All, ModelVariant::DrawProportional).unwrap_err(),
        ModelError::EmptyPattern
    );
}

#[test]
fn type2_patterns_model_cleanly() {
    let t = topo(4, 8, 4, 9);
    for p in tugal_traffic::type_2_set(&t, 3, 11) {
        let d = p.demands().unwrap();
        let th = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
        assert!(th > 0.2 && th <= 1.0, "{th}");
    }
}

#[test]
fn multi_is_consistent_with_single() {
    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 3, 1);
    let rules = [
        VlbRule::All,
        VlbRule::ClassLimit {
            max_hops: 5,
            frac_next: 0.0,
        },
    ];
    let multi = modeled_throughput_multi(&t, &d, &rules, ModelVariant::DrawProportional).unwrap();
    for (i, &rule) in rules.iter().enumerate() {
        let single = modeled_throughput(&t, &d, rule, ModelVariant::DrawProportional).unwrap();
        assert!((multi[i] - single).abs() < 1e-9);
    }
}

#[test]
fn fig4_absolute_range_is_plausible() {
    // The paper reports ~0.56 for all-VLB and ~0.58 for the best subset on
    // dfly(4,8,4,9).  Our substrate differs from CPLEX+BookSim in details,
    // so accept a generous band around those values for the TYPE_1-style
    // shift(2,0) pattern.
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 2, 0);
    let all = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert!((0.35..=0.75).contains(&all), "all-VLB modeled {all}");
}

#[test]
fn bottlenecks_are_global_links_under_adversarial_traffic() {
    use tugal_topology::ChannelKind;

    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 1, 0);
    let (theta, hot) = crate::modeled_bottlenecks(&t, &d, VlbRule::All).unwrap();
    assert!(theta > 0.0);
    assert!(!hot.is_empty(), "a saturated model must have binding rows");
    // The narrative of §3.1: the scarce resource under a shift pattern is
    // global-link capacity, so the binding constraints must be global
    // channels.
    let global = hot
        .iter()
        .filter(|(c, _)| t.channel(*c).kind == ChannelKind::Global)
        .count();
    assert!(
        global * 2 > hot.len(),
        "most binding rows should be global links: {global}/{}",
        hot.len()
    );
    // Sorted by shadow price, descending.
    for w in hot.windows(2) {
        assert!(w[0].1 >= w[1].1 - 1e-12);
    }
}

#[test]
fn bottleneck_throughput_matches_plain_solve() {
    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 2, 1);
    let plain = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    let (theta, _) = crate::modeled_bottlenecks(&t, &d, VlbRule::All).unwrap();
    assert!((plain - theta).abs() < 1e-9);
}
