//! Model behaviour tests: sanity bounds and the qualitative shapes the
//! paper's Step-1 estimation relies on.

use crate::*;
use tugal_routing::VlbRule;
use tugal_topology::{Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern};

fn topo(p: u32, a: u32, h: u32, g: u32) -> Dragonfly {
    Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap()
}

fn shift_demands(t: &Dragonfly, dg: u32, ds: u32) -> Vec<(u32, u32, u32)> {
    Shift::new(t, dg, ds).demands().unwrap()
}

#[test]
fn throughput_is_in_unit_interval() {
    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 1, 0);
    let th = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert!(th > 0.0 && th <= 1.0, "{th}");
}

#[test]
fn adversarial_shift_beats_min_only_via_vlb() {
    // With only 1 global link between groups and 8 nodes sending to one
    // other group, MIN alone caps at 1/8 = 0.125; VLB must lift it.
    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 1, 0);
    let th = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert!(th > 0.2, "{th}");
}

#[test]
fn draw_proportional_plateaus_on_dense_topology() {
    // dfly(4,8,4,9), Figure 4's shape under our reconstruction: a steep
    // rise from the smallest sets to a plateau where "60% 5-hop" and "all
    // VLB paths" are within ~1% of each other (the Step-2 simulation then
    // separates them; see DESIGN.md §4).
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 2, 0);
    let rules = [
        VlbRule::ClassLimit {
            max_hops: 3,
            frac_next: 0.0,
        },
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.6,
        },
        VlbRule::All,
    ];
    let th = modeled_throughput_multi(&t, &d, &rules, ModelVariant::DrawProportional).unwrap();
    let (small, mid, all) = (th[0], th[1], th[2]);
    assert!(
        (mid - all).abs() < 0.015 * all.max(1e-9),
        "restricted set should be on the plateau with all-VLB: {mid} vs {all}"
    );
    assert!(
        mid > small + 0.02,
        "tiny set should fall well below the plateau: {mid} vs {small}"
    );
}

#[test]
fn all_vlb_wins_on_maximal_topology() {
    // dfly(4,8,4,33): Figure 5 — all VLB paths are needed; restrictions
    // lose throughput.
    let t = topo(4, 8, 4, 33);
    let d = shift_demands(&t, 1, 0);
    let rules = [
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.0,
        },
        VlbRule::ClassLimit {
            max_hops: 5,
            frac_next: 0.0,
        },
        VlbRule::All,
    ];
    let th = modeled_throughput_multi(&t, &d, &rules, ModelVariant::DrawProportional).unwrap();
    assert!(
        th[2] >= th[1] && th[2] >= th[0],
        "all-VLB must win on the maximal topology: {th:?}"
    );
    assert!(th[2] > th[0] + 0.02, "restriction should hurt: {th:?}");
}

#[test]
fn monotone_variant_is_a_relaxation() {
    // The monotone variant can only do better or equal — it frees the
    // allocation that draw-proportional pins.
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 1, 0);
    for rule in [
        VlbRule::All,
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.5,
        },
    ] {
        let dp = modeled_throughput(&t, &d, rule, ModelVariant::DrawProportional).unwrap();
        let mc = modeled_throughput(&t, &d, rule, ModelVariant::MonotoneClasses).unwrap();
        assert!(mc >= dp - 1e-6, "monotone {mc} < draw-proportional {dp}");
    }
}

#[test]
fn monotone_variant_cannot_reproduce_the_hump() {
    // Documented ablation: under the relaxed (literal) reading, supersets
    // never lose, so Figure 4's decline cannot appear.
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 2, 0);
    let restricted = modeled_throughput(
        &t,
        &d,
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.6,
        },
        ModelVariant::MonotoneClasses,
    )
    .unwrap();
    let all = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::MonotoneClasses).unwrap();
    assert!(all >= restricted - 1e-6, "{all} vs {restricted}");
}

#[test]
fn strategic_rules_are_competitive_at_five_hops() {
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 2, 0);
    let rules = [
        VlbRule::Strategic { first_seg: 2 },
        VlbRule::Strategic { first_seg: 3 },
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.5,
        },
    ];
    let th = modeled_throughput_multi(&t, &d, &rules, ModelVariant::DrawProportional).unwrap();
    for (r, v) in rules.iter().zip(&th) {
        assert!(*v > 0.3, "{r:?} scored {v}");
    }
    // The strategic choices approximate the 50% point.
    assert!((th[0] - th[2]).abs() < 0.15, "{th:?}");
}

#[test]
fn uniform_like_pattern_scores_high() {
    // A switch permutation that is NOT group-adversarial (destination in a
    // different group for each switch, spread out) gives near-full
    // throughput via MIN.
    let t = topo(2, 4, 2, 9);
    // shift by one switch position globally: switch s -> s + a (next
    // group, same position): that IS adversarial.  Instead use a spread
    // permutation: switch s -> (s * 5 + 1) mod 36 filtered to cross-group.
    let mut demands = Vec::new();
    for s in 0..36u32 {
        let d = (s * 5 + 1) % 36;
        if d != s {
            demands.push((s, d, 2));
        }
    }
    let th =
        modeled_throughput(&t, &demands, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert!(th > 0.4, "{th}");
}

#[test]
fn empty_pattern_is_an_error() {
    let t = topo(2, 4, 2, 9);
    assert_eq!(
        modeled_throughput(&t, &[], VlbRule::All, ModelVariant::DrawProportional).unwrap_err(),
        ModelError::EmptyPattern
    );
}

#[test]
fn type2_patterns_model_cleanly() {
    let t = topo(4, 8, 4, 9);
    for p in tugal_traffic::type_2_set(&t, 3, 11) {
        let d = p.demands().unwrap();
        let th = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
        assert!(th > 0.2 && th <= 1.0, "{th}");
    }
}

#[test]
fn multi_is_consistent_with_single() {
    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 3, 1);
    let rules = [
        VlbRule::All,
        VlbRule::ClassLimit {
            max_hops: 5,
            frac_next: 0.0,
        },
    ];
    let multi = modeled_throughput_multi(&t, &d, &rules, ModelVariant::DrawProportional).unwrap();
    for (i, &rule) in rules.iter().enumerate() {
        let single = modeled_throughput(&t, &d, rule, ModelVariant::DrawProportional).unwrap();
        assert!((multi[i] - single).abs() < 1e-9);
    }
}

#[test]
fn fig4_absolute_range_is_plausible() {
    // The paper reports ~0.56 for all-VLB and ~0.58 for the best subset on
    // dfly(4,8,4,9).  Our substrate differs from CPLEX+BookSim in details,
    // so accept a generous band around those values for the TYPE_1-style
    // shift(2,0) pattern.
    let t = topo(4, 8, 4, 9);
    let d = shift_demands(&t, 2, 0);
    let all = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    assert!((0.35..=0.75).contains(&all), "all-VLB modeled {all}");
}

#[test]
fn bottlenecks_are_global_links_under_adversarial_traffic() {
    use tugal_topology::ChannelKind;

    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 1, 0);
    let (theta, hot) = crate::modeled_bottlenecks(&t, &d, VlbRule::All).unwrap();
    assert!(theta > 0.0);
    assert!(!hot.is_empty(), "a saturated model must have binding rows");
    // The narrative of §3.1: the scarce resource under a shift pattern is
    // global-link capacity, so the binding constraints must be global
    // channels.
    let global = hot
        .iter()
        .filter(|(c, _)| t.channel(*c).kind == ChannelKind::Global)
        .count();
    assert!(
        global * 2 > hot.len(),
        "most binding rows should be global links: {global}/{}",
        hot.len()
    );
    // Sorted by shadow price, descending.
    for w in hot.windows(2) {
        assert!(w[0].1 >= w[1].1 - 1e-12);
    }
}

#[test]
fn bottleneck_throughput_matches_plain_solve() {
    let t = topo(2, 4, 2, 9);
    let d = shift_demands(&t, 2, 1);
    let plain = modeled_throughput(&t, &d, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    let (theta, _) = crate::modeled_bottlenecks(&t, &d, VlbRule::All).unwrap();
    assert!((plain - theta).abs() < 1e-9);
}

// ---------------------------------------------------------------------------
// Degraded-topology model: differential anchors against the pristine model
// and against the Garg–Könemann concurrent-flow approximation.

#[test]
fn degraded_stats_with_empty_faults_match_pristine() {
    use tugal_topology::{FaultSet, SwitchId};
    let t = topo(2, 4, 2, 5);
    let deg = t.degrade(&FaultSet::empty());
    for s in 0..t.num_switches() as u32 {
        for d in 0..t.num_switches() as u32 {
            if s == d {
                continue;
            }
            let a = PairStats::compute(&t, SwitchId(s), SwitchId(d));
            let b = PairStats::compute_degraded(&t, &deg, SwitchId(s), SwitchId(d));
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "{s}->{d}");
        }
    }
}

#[test]
fn degraded_model_with_empty_faults_matches_pristine() {
    use tugal_topology::FaultSet;
    let t = topo(2, 4, 2, 5);
    let deg = t.degrade(&FaultSet::empty());
    let dem = shift_demands(&t, 1, 0);
    for rule in [
        VlbRule::All,
        VlbRule::ClassLimit {
            max_hops: 3,
            frac_next: 0.0,
        },
    ] {
        for variant in [
            ModelVariant::DrawProportional,
            ModelVariant::MonotoneClasses,
        ] {
            let pristine = modeled_throughput(&t, &dem, rule, variant).unwrap();
            let m = modeled_throughput_degraded(&t, &deg, &dem, rule, variant).unwrap();
            assert_eq!(m.theta, pristine, "{rule:?}/{variant:?}");
            assert_eq!(m.unreachable_pairs, 0);
            assert_eq!(m.reachable_pairs, dem.len());
        }
    }
}

#[test]
fn fault_sweep_thetas_degrade_and_stay_positive() {
    // The fig_faults fault seed and fractions: Γ under growing failure must
    // never exceed the pristine value and must stay well above zero (the
    // draw-proportional variant is not superset-monotone in general, but on
    // this sweep the loss of capacity dominates — pinned here so the figure
    // keeps its shape).
    use tugal_topology::FaultSet;
    let t = topo(2, 4, 2, 5);
    let dem = shift_demands(&t, 1, 0);
    let pristine =
        modeled_throughput(&t, &dem, VlbRule::All, ModelVariant::DrawProportional).unwrap();
    for frac in [0.025, 0.05, 0.10] {
        let deg = t.degrade(&FaultSet::sample_global_links(&t, frac, 0xFA17));
        let m = modeled_throughput_degraded(
            &t,
            &deg,
            &dem,
            VlbRule::All,
            ModelVariant::DrawProportional,
        )
        .unwrap();
        assert!(
            m.theta <= pristine + 1e-9,
            "f={frac}: {} > pristine {pristine}",
            m.theta
        );
        assert!(m.theta > 0.3, "f={frac}: collapsed to {}", m.theta);
        assert_eq!(m.unreachable_pairs, 0, "10% faults cannot partition this");
    }
}

#[test]
fn simplex_and_mcf_agree_on_degraded_instances() {
    // Free-split maximum concurrent flow over the surviving candidate
    // paths, solved two ways: the exact dense simplex and the
    // Garg–Könemann approximation.  The approximation is a guaranteed
    // lower bound and must land within its accuracy band.
    use std::collections::HashMap;
    use tugal_lp::{ConcurrentFlow, FlowPath, LinearProgram, Relation, VarId};
    use tugal_routing::PathTable;
    use tugal_topology::{FaultSet, SwitchId};

    let t = topo(2, 4, 2, 5);
    let mut faults = FaultSet::sample_global_links(&t, 0.10, 0xBEEF);
    faults.fail_switch(SwitchId(5));
    let deg = t.degrade(&faults);
    let table = PathTable::build_all_degraded(&t, &deg);
    let dem = shift_demands(&t, 1, 0);

    let mut cf = ConcurrentFlow::new(vec![1.0; t.num_network_channels()]);
    let mut lp = LinearProgram::new();
    let theta = lp.add_var(1.0);
    lp.add_constraint(&[(theta, 1.0)], Relation::Le, 1.0);
    let mut edge_rows: HashMap<usize, Vec<(VarId, f64)>> = HashMap::new();
    let mut commodities = 0;
    for &(s, d, flows) in &dem {
        let (s, d) = (SwitchId(s), SwitchId(d));
        if deg.switch_dead(s) || deg.switch_dead(d) {
            continue;
        }
        let pp = table.pair(s, d);
        let paths: Vec<&tugal_routing::Path> = pp.min.iter().chain(&pp.vlb).collect();
        assert!(!paths.is_empty(), "{s}->{d} lost all candidates");
        let flow_paths: Vec<FlowPath> = paths
            .iter()
            .map(|p| FlowPath::new((0..p.hops()).map(|i| p.channel_at(&t, i).index()).collect()))
            .collect();
        cf.add_commodity(flows as f64, flow_paths.clone());
        commodities += 1;
        let vars: Vec<VarId> = paths.iter().map(|_| lp.add_var(0.0)).collect();
        // θ·demand − Σ f_p ≤ 0  (the commodity must be fully served).
        let mut terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, -1.0)).collect();
        terms.push((theta, flows as f64));
        lp.add_constraint(&terms, Relation::Le, 0.0);
        for (v, fp) in vars.iter().zip(&flow_paths) {
            for &e in &fp.edges {
                edge_rows.entry(e).or_default().push((*v, 1.0));
            }
        }
    }
    assert!(commodities > 0);
    let mut edges: Vec<usize> = edge_rows.keys().copied().collect();
    edges.sort_unstable();
    for e in edges {
        lp.add_constraint(&edge_rows[&e], Relation::Le, 1.0);
    }
    lp.set_max_iterations(400_000);
    let exact = lp.solve().unwrap().value(theta);
    let approx = cf.solve(0.03).throughput;
    assert!(exact > 0.0 && exact <= 1.0 + 1e-9, "{exact}");
    assert!(
        approx <= exact + 1e-6,
        "MCF {approx} must lower-bound the simplex optimum {exact}"
    );
    assert!(
        approx >= 0.85 * exact,
        "MCF {approx} fell outside the accuracy band of the simplex {exact}"
    );
}

#[test]
fn disconnected_pairs_are_excluded_and_reported() {
    // Killing a whole switch disconnects exactly the demands that touch
    // it; the model must drop them, report them, and still solve.
    use tugal_topology::{FaultSet, SwitchId};
    let t = topo(2, 4, 2, 5);
    let dem = shift_demands(&t, 1, 0);
    let mut faults = FaultSet::empty();
    faults.fail_switch(SwitchId(0));
    let deg = t.degrade(&faults);
    let touching = dem.iter().filter(|&&(s, d, _)| s == 0 || d == 0).count();
    assert!(touching > 0);
    let m =
        modeled_throughput_degraded(&t, &deg, &dem, VlbRule::All, ModelVariant::DrawProportional)
            .unwrap();
    assert_eq!(m.unreachable_pairs, touching);
    assert_eq!(m.reachable_pairs, dem.len() - touching);
    assert!(m.theta > 0.0);
}
