//! Compact descriptions of VLB candidate subsets (the Table-1 data points).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rule describing which VLB paths are candidates.
///
/// These are the "data points" of Table 1 of the paper plus the *strategic*
/// 5-hop choices of §3.3.3.  A rule is either materialized into an explicit
/// [`crate::PathTable`] (small networks) or sampled on the fly
/// ([`crate::RuleProvider`], large networks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VlbRule {
    /// All VLB paths — conventional UGAL.
    All,
    /// All paths of at most `max_hops` hops, plus a fraction `frac_next` of
    /// the `(max_hops + 1)`-hop paths.
    ///
    /// `ClassLimit { max_hops: 4, frac_next: 0.6 }` is the paper's
    /// "60% 5-hop" point: all VLB paths that are 4 hops or less plus 60% of
    /// the 5-hop paths.  `frac_next = 0` is the plain "`max_hops`-hop paths"
    /// point.
    ClassLimit {
        /// Hop classes fully included.
        max_hops: u8,
        /// Fraction of the next class included (`0.0 ..= 1.0`).
        frac_next: f64,
    },
    /// Strategic choice: all paths of ≤ 4 hops, plus the 5-hop paths whose
    /// first MIN segment is exactly `first_seg` hops (2 + 3 or 3 + 2, the
    /// two deterministic ways of halving the 5-hop class, §3.3.3).
    Strategic {
        /// Required first-segment length of included 5-hop paths (2 or 3).
        first_seg: u8,
    },
}

impl VlbRule {
    /// True when the rule keeps every VLB path.
    pub fn is_all(&self) -> bool {
        match self {
            VlbRule::All => true,
            VlbRule::ClassLimit {
                max_hops,
                frac_next,
            } => *max_hops >= 6 || (*max_hops == 5 && *frac_next >= 1.0),
            VlbRule::Strategic { .. } => false,
        }
    }

    /// Largest hop count a path accepted by this rule can have.
    pub fn max_hops(&self) -> u8 {
        match self {
            VlbRule::All => 6,
            VlbRule::ClassLimit {
                max_hops,
                frac_next,
            } => {
                if *frac_next > 0.0 {
                    max_hops + 1
                } else {
                    *max_hops
                }
            }
            VlbRule::Strategic { .. } => 5,
        }
    }
}

impl fmt::Display for VlbRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VlbRule::All => write!(f, "all VLB paths"),
            VlbRule::ClassLimit {
                max_hops,
                frac_next,
            } => {
                if *frac_next == 0.0 {
                    write!(f, "{max_hops}-hop paths")
                } else {
                    write!(
                        f,
                        "{}% {}-hop",
                        (frac_next * 100.0).round() as u32,
                        max_hops + 1
                    )
                }
            }
            VlbRule::Strategic { first_seg } => {
                write!(f, "strategic {}+{} 5-hop", first_seg, 5 - first_seg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(VlbRule::All.to_string(), "all VLB paths");
        assert_eq!(
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.6
            }
            .to_string(),
            "60% 5-hop"
        );
        assert_eq!(
            VlbRule::ClassLimit {
                max_hops: 3,
                frac_next: 0.0
            }
            .to_string(),
            "3-hop paths"
        );
        assert_eq!(
            VlbRule::Strategic { first_seg: 2 }.to_string(),
            "strategic 2+3 5-hop"
        );
    }

    #[test]
    fn is_all_detection() {
        assert!(VlbRule::All.is_all());
        assert!(VlbRule::ClassLimit {
            max_hops: 5,
            frac_next: 1.0
        }
        .is_all());
        assert!(VlbRule::ClassLimit {
            max_hops: 6,
            frac_next: 0.0
        }
        .is_all());
        assert!(!VlbRule::ClassLimit {
            max_hops: 5,
            frac_next: 0.9
        }
        .is_all());
        assert!(!VlbRule::Strategic { first_seg: 2 }.is_all());
    }

    #[test]
    fn max_hops() {
        assert_eq!(VlbRule::All.max_hops(), 6);
        assert_eq!(
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.5
            }
            .max_hops(),
            5
        );
        assert_eq!(
            VlbRule::ClassLimit {
                max_hops: 4,
                frac_next: 0.0
            }
            .max_hops(),
            4
        );
        assert_eq!(VlbRule::Strategic { first_seg: 3 }.max_hops(), 5);
    }
}
