//! Path providers: where a router's UGAL decision gets its candidates.
//!
//! UGAL considers one randomly chosen MIN candidate and one randomly chosen
//! VLB candidate per packet (§4.1.2 of the paper).  The provider abstracts
//! *which set* the candidates are drawn from: all VLB paths (conventional
//! UGAL), an explicit T-VLB table, or a rule-described subset sampled on the
//! fly for networks too large to tabulate.

use crate::path::Path;
use crate::rule::VlbRule;
use crate::store::{PathId, PathRef, PathStore};
use crate::table::PathTable;
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;
use tugal_topology::{Dragonfly, GroupId, SwitchId};

/// Source of candidate paths for routing decisions.
///
/// Implementations must be cheap: `sample_*` runs once per packet in the
/// simulator's hot loop.
///
/// ## Borrowed sampling
///
/// The `sample_*_ref` methods are the allocation-free form of the same
/// draws: a provider backed by an interned [`PathStore`] returns
/// [`PathRef::Interned`] borrows of its arena, and the engine stores the
/// [`PathId`] instead of copying the path into the packet.  The contract is
/// strict: for any RNG state, `sample_min(s, d, rng)` and
/// `*sample_min_ref(s, d, rng).path()` must return the same path *and*
/// leave the RNG in the same state (likewise for VLB), so a simulation is
/// bit-for-bit identical whichever form the engine calls.  The default
/// implementations delegate to the owned samplers, which satisfies the
/// contract for free; table-backed providers override them (and the owned
/// forms delegate the other way around).
pub trait PathProvider: Send + Sync {
    /// The topology the paths live in.
    fn topo(&self) -> &Dragonfly;

    /// Draws one MIN candidate for the ordered pair `(s, d)`.
    fn sample_min(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> Path;

    /// Draws one VLB candidate for the ordered pair `(s, d)`.
    ///
    /// For `s == d`, or when the pair has no VLB candidates, falls back to a
    /// MIN candidate (the decision then degenerates to MIN, which is what
    /// UGAL does for intra-switch traffic).
    fn sample_vlb(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> Path;

    /// Borrowed form of [`PathProvider::sample_min`] (same draw, same RNG
    /// consumption; see the trait docs for the contract).
    fn sample_min_ref(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> PathRef<'_> {
        PathRef::Owned(self.sample_min(s, d, rng))
    }

    /// Borrowed form of [`PathProvider::sample_vlb`].
    fn sample_vlb_ref(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> PathRef<'_> {
        PathRef::Owned(self.sample_vlb(s, d, rng))
    }

    /// The interned arena behind this provider's [`PathRef::Interned`]
    /// candidates, if it has one.  Providers that return only
    /// [`PathRef::Owned`] (the default sampling) report `None`.
    fn path_store(&self) -> Option<&PathStore> {
        None
    }

    /// Resolves an id previously issued by this provider's borrowed
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics when the provider has no [`PathStore`] — only ids obtained
    /// from this provider's own `sample_*_ref` draws are resolvable.
    #[inline]
    fn resolve(&self, id: PathId) -> &Path {
        self.path_store()
            .expect("resolve() on a provider without a PathStore")
            .get(id)
    }

    /// Average number of VLB hops (used in reports; an estimate is fine).
    fn mean_vlb_hops(&self) -> f64;
}

/// Provider backed by an explicit [`PathTable`].
///
/// Construction compiles the table into an interned [`PathStore`]: every
/// pair's candidates become one contiguous arena range (MIN paths first,
/// then VLB), so borrowed sampling is an index draw plus an arena borrow —
/// no per-draw copies, no pointer chasing through per-pair `Vec`s.  The
/// original table is kept alongside for introspection ([`Self::table`]).
pub struct TableProvider {
    topo: Arc<Dragonfly>,
    table: PathTable,
    store: PathStore,
    /// Arena start of pair `i`'s candidates (`n² + 1` entries); pair `i`
    /// owns `base[i]..base[i+1]`.
    base: Vec<u32>,
    /// Arena start of pair `i`'s VLB candidates within its range: MIN is
    /// `base[i]..vlb_base[i]`, VLB is `vlb_base[i]..base[i+1]`.
    vlb_base: Vec<u32>,
}

impl TableProvider {
    /// Wraps a prebuilt table, compiling it into the interned arena.
    pub fn new(topo: Arc<Dragonfly>, table: PathTable) -> Self {
        assert_eq!(table.num_switches(), topo.num_switches());
        let n = table.num_switches() as u32;
        let mut store = PathStore::new();
        let mut base = Vec::with_capacity((n as usize) * (n as usize) + 1);
        let mut vlb_base = Vec::with_capacity((n as usize) * (n as usize));
        for s in 0..n {
            for d in 0..n {
                base.push(store.len() as u32);
                let pp = table.pair(SwitchId(s), SwitchId(d));
                for &p in &pp.min {
                    store.push(p);
                }
                vlb_base.push(store.len() as u32);
                for &p in &pp.vlb {
                    store.push(p);
                }
            }
        }
        base.push(store.len() as u32);
        Self {
            topo,
            table,
            store,
            base,
            vlb_base,
        }
    }

    /// Conventional UGAL: all MIN and all VLB paths.
    pub fn all_paths(topo: Arc<Dragonfly>) -> Self {
        let table = PathTable::build_all(&topo);
        Self::new(topo, table)
    }

    /// The underlying table.
    pub fn table(&self) -> &PathTable {
        &self.table
    }
}

impl TableProvider {
    /// Draws an id from the arena range `lo..hi` (one `gen_range` call —
    /// the same RNG consumption as indexing the uncompiled `Vec<Path>`).
    #[inline]
    fn draw(&self, lo: u32, hi: u32, rng: &mut SmallRng) -> PathRef<'_> {
        let id = PathId(lo + rng.gen_range(0..hi - lo));
        PathRef::Interned(id, self.store.get(id))
    }
}

impl PathProvider for TableProvider {
    fn topo(&self) -> &Dragonfly {
        &self.topo
    }

    fn sample_min(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> Path {
        *self.sample_min_ref(s, d, rng).path()
    }

    fn sample_vlb(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> Path {
        *self.sample_vlb_ref(s, d, rng).path()
    }

    fn sample_min_ref(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> PathRef<'_> {
        if s == d {
            return PathRef::Owned(Path::single(s));
        }
        let i = s.index() * self.table.num_switches() + d.index();
        let (lo, mid, hi) = (self.base[i], self.vlb_base[i], self.base[i + 1]);
        // A degraded table can lose every MIN candidate of a pair; fall
        // back to VLB, or to the zero-hop unreachable sentinel (dst != d,
        // which the engine drops) when the pair has no candidates at all.
        // Pristine tables never hit these branches, so the RNG draw
        // sequence of fault-free runs is unchanged.
        if lo == mid {
            if mid == hi {
                return PathRef::Owned(Path::single(s));
            }
            return self.draw(mid, hi, rng);
        }
        self.draw(lo, mid, rng)
    }

    fn sample_vlb_ref(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> PathRef<'_> {
        if s == d {
            return PathRef::Owned(Path::single(s));
        }
        let i = s.index() * self.table.num_switches() + d.index();
        let (lo, mid, hi) = (self.base[i], self.vlb_base[i], self.base[i + 1]);
        if mid == hi {
            if lo == mid {
                // Unreachable pair of a degraded table (see `sample_min_ref`).
                return PathRef::Owned(Path::single(s));
            }
            return self.draw(lo, mid, rng);
        }
        self.draw(mid, hi, rng)
    }

    fn path_store(&self) -> Option<&PathStore> {
        Some(&self.store)
    }

    fn mean_vlb_hops(&self) -> f64 {
        self.table.mean_vlb_hops()
    }
}

/// O(1)-memory provider that samples paths directly from the topology and
/// accepts them against a [`VlbRule`] (rejection sampling).
///
/// The base sampler draws a uniform intermediate switch outside the endpoint
/// groups and a uniform global link for each MIN segment — the same process
/// BookSim's UGAL uses, so for `VlbRule::All` this *is* conventional UGAL.
/// For restricted rules the sample is accepted iff the rule admits the
/// composed path (fractional classes are admitted with the configured
/// probability, which matches the expectation over the random subsets an
/// explicit table would fix).  After `max_tries` rejections the shortest
/// sampled path is returned so the provider cannot live-lock on pairs where
/// admissible paths are rare.
pub struct RuleProvider {
    topo: Arc<Dragonfly>,
    rule: VlbRule,
    max_tries: u32,
}

impl RuleProvider {
    /// Creates a provider with the default retry budget.
    pub fn new(topo: Arc<Dragonfly>, rule: VlbRule) -> Self {
        Self {
            topo,
            rule,
            max_tries: 256,
        }
    }

    /// The rule being sampled.
    pub fn rule(&self) -> VlbRule {
        self.rule
    }

    /// Composes one uniformly sampled VLB walk; returns the path and the
    /// first-segment hop count.
    fn sample_raw(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> (Path, usize) {
        let t = &self.topo;
        let g = t.num_groups() as u32;
        let (gs, gd) = (t.group_of(s), t.group_of(d));
        // Uniform group outside {gs, gd} (they are distinct from each other
        // or not; handle both).
        let gi = loop {
            let c = GroupId(rng.gen_range(0..g));
            if c != gs && c != gd {
                break c;
            }
        };
        let i = t.switch_in_group(gi, rng.gen_range(0..t.params().a));
        let seg1 = sample_min_path(t, s, i, rng);
        let seg2 = sample_min_path(t, i, d, rng);
        let first = seg1.hops();
        (seg1.concat(&seg2), first)
    }

    fn accept(&self, path: &Path, first_seg: usize, rng: &mut SmallRng) -> bool {
        match self.rule {
            VlbRule::All => true,
            VlbRule::ClassLimit {
                max_hops,
                frac_next,
            } => {
                let h = path.hops();
                h <= max_hops as usize
                    || (h == max_hops as usize + 1 && rng.gen_bool(frac_next.clamp(0.0, 1.0)))
            }
            VlbRule::Strategic { first_seg: want } => {
                path.hops() <= 4 || (path.hops() == 5 && first_seg == want as usize)
            }
        }
    }
}

/// Draws one MIN path for `(s, d)` uniformly over the global links between
/// the endpoint groups, without materializing the candidate list.
pub fn sample_min_path(t: &Dragonfly, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> Path {
    if s == d {
        return Path::single(s);
    }
    let (gs, gd) = (t.group_of(s), t.group_of(d));
    if gs == gd {
        return Path::from_switches(&[s, d]);
    }
    let gws = t.gateways(gs, gd);
    let (u, v, _) = gws[rng.gen_range(0..gws.len())];
    let mut p = Path::single(s);
    if u != s {
        p.push(u);
    }
    p.push(v);
    if v != d {
        p.push(d);
    }
    p
}

impl PathProvider for RuleProvider {
    fn topo(&self) -> &Dragonfly {
        &self.topo
    }

    fn sample_min(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> Path {
        sample_min_path(&self.topo, s, d, rng)
    }

    fn sample_vlb(&self, s: SwitchId, d: SwitchId, rng: &mut SmallRng) -> Path {
        if s == d || self.topo.num_groups() <= 2 {
            // No valid intermediate group exists for 2-group networks when
            // the endpoints are in different groups; degrade to MIN.
            if s == d || self.topo.group_of(s) != self.topo.group_of(d) {
                return self.sample_min(s, d, rng);
            }
        }
        let mut best: Option<Path> = None;
        for _ in 0..self.max_tries {
            let (p, first) = self.sample_raw(s, d, rng);
            if self.accept(&p, first, rng) {
                return p;
            }
            if best.is_none_or(|b| p.hops() < b.hops()) {
                best = Some(p);
            }
        }
        best.expect("max_tries > 0")
    }

    fn mean_vlb_hops(&self) -> f64 {
        // Cheap deterministic estimate by sampling.
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(0xEE57);
        let n = self.topo.num_switches() as u32;
        let mut sum = 0.0;
        let samples = 2000;
        for _ in 0..samples {
            let s = SwitchId(rng.gen_range(0..n));
            let d = loop {
                let d = SwitchId(rng.gen_range(0..n));
                if d != s {
                    break d;
                }
            };
            sum += self.sample_vlb(s, d, &mut rng).hops() as f64;
        }
        sum / samples as f64
    }
}
