//! Compact switch-level path representation.

use serde::{Deserialize, Serialize};
use std::fmt;
use tugal_topology::{ChannelId, ChannelKind, Dragonfly, SwitchId};

/// Maximum number of hops a path can hold.
///
/// A VLB path has at most 6 hops; a PAR reroute prepends one local hop, so 7
/// hops (8 switches) bound every path this system produces.
pub const MAX_HOPS: usize = 7;

/// A switch-level path: the sequence of switches a packet visits.
///
/// Stored inline (no heap allocation) because path tables hold millions of
/// these.  Switch ids are stored as `u16`, which supports topologies with up
/// to 65 535 switches — far beyond the largest topology evaluated in the
/// paper (702 switches).
///
/// A path with `hops() == 0` is a single-switch path (source switch ==
/// destination switch); the packet only uses its injection and ejection
/// channels.  The `Default` path is the zero-hop path at switch 0
/// (equivalent to `Path::single(SwitchId(0))`) — a valid placeholder.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    sw: [u16; MAX_HOPS + 1],
    len: u8,
}

impl Path {
    /// A zero-hop path at a single switch.
    pub fn single(s: SwitchId) -> Self {
        let mut sw = [0u16; MAX_HOPS + 1];
        sw[0] = Self::narrow(s);
        Path { sw, len: 0 }
    }

    /// Builds a path from a switch sequence (`switches.len() - 1` hops).
    ///
    /// # Panics
    /// If the sequence is empty, longer than `MAX_HOPS + 1`, or contains a
    /// switch id above `u16::MAX`.
    pub fn from_switches(switches: &[SwitchId]) -> Self {
        assert!(
            !switches.is_empty() && switches.len() <= MAX_HOPS + 1,
            "path length {} out of range",
            switches.len()
        );
        let mut sw = [0u16; MAX_HOPS + 1];
        for (slot, s) in sw.iter_mut().zip(switches) {
            *slot = Self::narrow(*s);
        }
        Path {
            sw,
            len: (switches.len() - 1) as u8,
        }
    }

    #[inline]
    fn narrow(s: SwitchId) -> u16 {
        debug_assert!(s.0 <= u16::MAX as u32, "switch id {} exceeds u16", s.0);
        s.0 as u16
    }

    /// Number of switch-to-switch hops.
    #[inline]
    pub fn hops(&self) -> usize {
        self.len as usize
    }

    /// First switch (the source switch).
    #[inline]
    pub fn src(&self) -> SwitchId {
        SwitchId(self.sw[0] as u32)
    }

    /// Last switch (the destination switch).
    #[inline]
    pub fn dst(&self) -> SwitchId {
        SwitchId(self.sw[self.len as usize] as u32)
    }

    /// The switch at position `i` (`0..=hops()`).
    #[inline]
    pub fn switch(&self, i: usize) -> SwitchId {
        debug_assert!(i <= self.len as usize);
        SwitchId(self.sw[i] as u32)
    }

    /// Iterator over the visited switches.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.sw[..=self.len as usize]
            .iter()
            .map(|&s| SwitchId(s as u32))
    }

    /// The `i`-th hop as a `(from, to)` switch pair.
    #[inline]
    pub fn hop(&self, i: usize) -> (SwitchId, SwitchId) {
        debug_assert!(i < self.len as usize);
        (SwitchId(self.sw[i] as u32), SwitchId(self.sw[i + 1] as u32))
    }

    /// Appends a switch, extending the path by one hop.
    ///
    /// # Panics
    /// If the path is already `MAX_HOPS` long.
    pub fn push(&mut self, s: SwitchId) {
        assert!((self.len as usize) < MAX_HOPS, "path overflow");
        self.len += 1;
        self.sw[self.len as usize] = Self::narrow(s);
    }

    /// Concatenates two paths sharing a junction switch
    /// (`self.dst() == other.src()`).
    ///
    /// # Panics
    /// If the junction does not match or the result exceeds `MAX_HOPS`.
    pub fn concat(&self, other: &Path) -> Path {
        assert_eq!(self.dst(), other.src(), "paths do not share a junction");
        let mut out = *self;
        for i in 1..=other.len as usize {
            out.push(SwitchId(other.sw[i] as u32));
        }
        out
    }

    /// The suffix of this path starting at position `from` (a path from
    /// `switch(from)` to the destination).
    pub fn suffix(&self, from: usize) -> Path {
        debug_assert!(from <= self.len as usize);
        let mut sw = [0u16; MAX_HOPS + 1];
        let n = self.len as usize - from;
        sw[..=n].copy_from_slice(&self.sw[from..=self.len as usize]);
        Path { sw, len: n as u8 }
    }

    /// Channel kind of the `i`-th hop (local within a group, global across
    /// groups).
    #[inline]
    pub fn hop_kind(&self, topo: &Dragonfly, i: usize) -> ChannelKind {
        let (u, v) = self.hop(i);
        if topo.group_of(u) == topo.group_of(v) {
            ChannelKind::Local
        } else {
            ChannelKind::Global
        }
    }

    /// The directed channel of the `i`-th hop.  For parallel global links
    /// the first (lowest-id) channel is returned; the topology generator
    /// never produces parallel links between the *same switch pair* for the
    /// paper's configurations, so this is unambiguous there.
    #[inline]
    pub fn channel_at(&self, topo: &Dragonfly, i: usize) -> ChannelId {
        let (u, v) = self.hop(i);
        topo.channel_between(u, v)
            .expect("path hop without a channel")
    }

    /// All channels along the path.
    pub fn channels<'a>(&'a self, topo: &'a Dragonfly) -> impl Iterator<Item = ChannelId> + 'a {
        (0..self.hops()).map(move |i| self.channel_at(topo, i))
    }

    /// Number of global hops on the path.
    pub fn global_hops(&self, topo: &Dragonfly) -> usize {
        (0..self.hops())
            .filter(|&i| self.hop_kind(topo, i) == ChannelKind::Global)
            .count()
    }

    /// True if no switch is visited twice.
    ///
    /// Composing two MIN paths around an intermediate switch can produce a
    /// non-simple *walk* (the second segment may bounce back through the
    /// first segment's remote gateway).  Every such walk is dominated by a
    /// strictly shorter VLB path via a different intermediate, so explicit
    /// path tables keep only simple paths.
    pub fn is_simple(&self) -> bool {
        let n = self.len as usize + 1;
        for i in 0..n {
            for j in i + 1..n {
                if self.sw[i] == self.sw[j] {
                    return false;
                }
            }
        }
        true
    }

    /// True if every hop corresponds to an existing channel.
    pub fn is_wired(&self, topo: &Dragonfly) -> bool {
        (0..self.hops()).all(|i| {
            let (u, v) = self.hop(i);
            topo.channel_between(u, v).is_some()
        })
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.switches().enumerate() {
            if i > 0 {
                write!(f, "->")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(v: u32) -> SwitchId {
        SwitchId(v)
    }

    #[test]
    fn build_and_query() {
        let p = Path::from_switches(&[sid(1), sid(2), sid(9)]);
        assert_eq!(p.hops(), 2);
        assert_eq!(p.src(), sid(1));
        assert_eq!(p.dst(), sid(9));
        assert_eq!(p.hop(0), (sid(1), sid(2)));
        assert_eq!(p.hop(1), (sid(2), sid(9)));
        assert_eq!(
            p.switches().collect::<Vec<_>>(),
            vec![sid(1), sid(2), sid(9)]
        );
        assert_eq!(format!("{p:?}"), "[s1->s2->s9]");
    }

    #[test]
    fn single_switch_path() {
        let p = Path::single(sid(4));
        assert_eq!(p.hops(), 0);
        assert_eq!(p.src(), p.dst());
    }

    #[test]
    fn concat_and_suffix() {
        let a = Path::from_switches(&[sid(0), sid(1)]);
        let b = Path::from_switches(&[sid(1), sid(5), sid(6)]);
        let c = a.concat(&b);
        assert_eq!(c.hops(), 3);
        assert_eq!(
            c.switches().collect::<Vec<_>>(),
            vec![sid(0), sid(1), sid(5), sid(6)]
        );
        let s = c.suffix(1);
        assert_eq!(
            s.switches().collect::<Vec<_>>(),
            vec![sid(1), sid(5), sid(6)]
        );
        let whole = c.suffix(0);
        assert_eq!(whole, c);
        let end = c.suffix(3);
        assert_eq!(end.hops(), 0);
        assert_eq!(end.src(), sid(6));
    }

    #[test]
    #[should_panic(expected = "junction")]
    fn concat_rejects_mismatched_junction() {
        let a = Path::from_switches(&[sid(0), sid(1)]);
        let b = Path::from_switches(&[sid(2), sid(3)]);
        let _ = a.concat(&b);
    }

    #[test]
    #[should_panic(expected = "path overflow")]
    fn push_rejects_overflow() {
        let mut p = Path::from_switches(&[
            sid(0),
            sid(1),
            sid(2),
            sid(3),
            sid(4),
            sid(5),
            sid(6),
            sid(7),
        ]);
        p.push(sid(8));
    }

    #[test]
    fn path_is_copy_and_compact() {
        assert!(std::mem::size_of::<Path>() <= 18);
        let p = Path::single(sid(1));
        let q = p; // Copy
        assert_eq!(p, q);
    }
}
