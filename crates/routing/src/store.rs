//! Interned path storage: the arena behind borrowed path sampling.
//!
//! A [`PathStore`] owns every enumerated path of a provider in one flat
//! arena and hands out dense [`PathId`]s.  Providers that tabulate their
//! candidates (the [`crate::TableProvider`]) compile each pair's MIN and
//! VLB sets into contiguous id ranges, so a routing decision samples an
//! index and borrows `&Path` straight from the arena — no per-draw copy of
//! the candidate, no per-packet clone of the provider.  The simulator then
//! stores the [`PathId`] in the packet instead of an owned path.
//!
//! Providers that compose paths on the fly (the [`crate::RuleProvider`])
//! have nothing to intern; they return owned paths through the same
//! [`PathRef`] seam.

use crate::path::Path;

/// Dense handle into a [`PathStore`] arena.
///
/// Ids are only meaningful to the store (and provider) that issued them;
/// the top bit is reserved for the simulator's ephemeral-path tagging, so
/// a store never grows past `2^31` paths (vastly above any tabulated
/// topology — the largest tabulated paper network holds ~10^7 paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(pub u32);

/// Flat arena of interned paths.
#[derive(Debug, Clone, Default)]
pub struct PathStore {
    paths: Vec<Path>,
}

impl PathStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a path, returning its id.  Appending does not deduplicate:
    /// tabulated candidate sets are already duplicate-free per pair, and
    /// contiguous per-pair ranges are what make sampling an id O(1).
    pub fn push(&mut self, p: Path) -> PathId {
        let id = self.paths.len();
        assert!(id < (1 << 31), "PathStore overflow (2^31 paths)");
        self.paths.push(p);
        PathId(id as u32)
    }

    /// The interned path behind `id`.
    #[inline]
    pub fn get(&self, id: PathId) -> &Path {
        &self.paths[id.0 as usize]
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// A sampled candidate path: either a borrow of a provider's interned
/// arena (tabulated providers — the allocation-free hot path) or an owned
/// path composed on the fly (rule-based providers, degraded-table
/// sentinels).
///
/// The two variants are behaviourally identical: [`PathRef::path`] is the
/// sampled path either way, and the engine's RNG draw sequence does not
/// depend on which variant a provider returns (pinned by the differential
/// tests).
#[derive(Debug, Clone, Copy)]
pub enum PathRef<'a> {
    /// A path interned in the issuing provider's [`PathStore`].
    Interned(PathId, &'a Path),
    /// A path composed per draw; the caller copies it if it must outlive
    /// the decision.
    Owned(Path),
}

impl PathRef<'_> {
    /// The sampled path.
    #[inline]
    pub fn path(&self) -> &Path {
        match self {
            PathRef::Interned(_, p) => p,
            PathRef::Owned(p) => p,
        }
    }

    /// The arena id, for interned candidates.
    #[inline]
    pub fn id(&self) -> Option<PathId> {
        match self {
            PathRef::Interned(id, _) => Some(*id),
            PathRef::Owned(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tugal_topology::SwitchId;

    #[test]
    fn store_roundtrip() {
        let mut store = PathStore::new();
        assert!(store.is_empty());
        let a = store.push(Path::single(SwitchId(3)));
        let b = store.push(Path::from_switches(&[SwitchId(0), SwitchId(1)]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(a).src(), SwitchId(3));
        assert_eq!(store.get(b).hops(), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn pathref_variants_agree() {
        let p = Path::from_switches(&[SwitchId(0), SwitchId(1), SwitchId(2)]);
        let mut store = PathStore::new();
        let id = store.push(p);
        let interned = PathRef::Interned(id, store.get(id));
        let owned = PathRef::Owned(p);
        assert_eq!(interned.path(), owned.path());
        assert_eq!(interned.id(), Some(id));
        assert_eq!(owned.id(), None);
    }
}
