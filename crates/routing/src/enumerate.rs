//! Enumeration of MIN and VLB paths.

use crate::path::Path;
use std::collections::HashSet;
use tugal_topology::{Degraded, Dragonfly, GroupId, SwitchId};

/// Problems detected by [`validate_path`](crate::enumerate::validate_path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A hop connects switches with no channel between them.
    MissingChannel(usize),
    /// More global hops than the VLB maximum of two.
    TooManyGlobalHops(usize),
}

/// All MIN paths from switch `s` to switch `d`.
///
/// * `s == d`: the zero-hop path.
/// * Same group: the single direct local hop (the intra-group topology is
///   fully connected).
/// * Different groups: one path per global link between the two groups —
///   local hop to the gateway (if needed), the global hop, local hop from
///   the remote gateway (if needed).  Lengths range from 1 to 3 hops.
pub fn min_paths(topo: &Dragonfly, s: SwitchId, d: SwitchId) -> Vec<Path> {
    if s == d {
        return vec![Path::single(s)];
    }
    let (gs, gd) = (topo.group_of(s), topo.group_of(d));
    if gs == gd {
        return vec![Path::from_switches(&[s, d])];
    }
    let gws = topo.gateways(gs, gd);
    let mut out = Vec::with_capacity(gws.len());
    for &(u, v, _) in gws {
        let mut p = Path::single(s);
        if u != s {
            p.push(u);
        }
        p.push(v);
        if v != d {
            p.push(d);
        }
        out.push(p);
    }
    out
}

/// All VLB paths from `s` to `d` through intermediate switch `i`.
///
/// Every combination of a MIN path `s → i` and a MIN path `i → d`.  The
/// intermediate must lie outside the source and destination groups (§2.2),
/// so both segments carry exactly one global hop and the composite has two.
pub fn vlb_paths_via(topo: &Dragonfly, s: SwitchId, d: SwitchId, i: SwitchId) -> Vec<Path> {
    debug_assert_ne!(topo.group_of(i), topo.group_of(s));
    debug_assert_ne!(topo.group_of(i), topo.group_of(d));
    let first = min_paths(topo, s, i);
    let second = min_paths(topo, i, d);
    let mut out = Vec::with_capacity(first.len() * second.len());
    for a in &first {
        for b in &second {
            out.push(a.concat(b));
        }
    }
    out
}

/// All distinct VLB paths from `s` to `d` (the conventional UGAL candidate
/// set), deduplicated by switch sequence.
///
/// Two different intermediate switches can induce the same switch sequence
/// (the split point is ambiguous when the sequence has several switches
/// outside the endpoint groups); such duplicates are removed so path-set
/// statistics (class counts, link-usage probabilities) are well defined.
///
/// Non-simple *walks* are kept: composing MIN segments around an
/// intermediate can revisit a switch, and on maximal topologies (one global
/// link per group pair) every same-group VLB path necessarily bounces out
/// and back over the same cable's endpoints.  These walks are exactly what
/// VLB produces in practice and what the paper's 2–6 hop accounting counts.
pub fn all_vlb_paths(topo: &Dragonfly, s: SwitchId, d: SwitchId) -> Vec<Path> {
    let (gs, gd) = (topo.group_of(s), topo.group_of(d));
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for gi in 0..topo.num_groups() as u32 {
        let gi = GroupId(gi);
        if gi == gs || gi == gd {
            continue;
        }
        for i in topo.switches_in_group(gi) {
            for p in vlb_paths_via(topo, s, d, i) {
                if seen.insert(p) {
                    out.push(p);
                }
            }
        }
    }
    out
}

/// True when every switch and every hop channel of `p` survives in the
/// degraded view (the path can still carry traffic).
///
/// A zero-hop path is alive iff its single switch is.  Channel death is
/// cable-level, so checking the forward direction of each hop suffices.
/// Under `global_lag > 1` a hop between two switches is backed by several
/// parallel cables, and per-sibling faults can kill them individually: a
/// hop stays alive while *any* of its parallel channels survives.
pub fn path_alive(topo: &Dragonfly, deg: &Degraded, p: &Path) -> bool {
    if deg.switch_dead(p.src()) {
        return false;
    }
    for i in 0..p.hops() {
        let (u, v) = p.hop(i);
        if deg.switch_dead(v) {
            return false;
        }
        let alive = match topo.channel_between(u, v) {
            None => false,
            Some(c) if !deg.channel_dead(c) => true,
            // First channel dead — a parallel global sibling may survive.
            Some(_) => topo
                .global_out(u)
                .iter()
                .any(|&(c, t)| t == v && !deg.channel_dead(c)),
        };
        if !alive {
            return false;
        }
    }
    true
}

/// [`min_paths`] restricted to channels alive in `deg`: dead gateways,
/// dead endpoint-local hops, and dead endpoint switches are skipped.
///
/// Candidates appear in the same order as the surviving subsequence of the
/// pristine enumeration, so `min_paths_degraded` with a pristine view is
/// byte-identical to `min_paths` (pinned by the differential tests).
pub fn min_paths_degraded(topo: &Dragonfly, deg: &Degraded, s: SwitchId, d: SwitchId) -> Vec<Path> {
    if deg.switch_dead(s) || deg.switch_dead(d) {
        return Vec::new();
    }
    if s == d {
        return vec![Path::single(s)];
    }
    let (gs, gd) = (topo.group_of(s), topo.group_of(d));
    let local_alive = |u: SwitchId, v: SwitchId| {
        topo.channel_between(u, v)
            .is_some_and(|c| !deg.channel_dead(c))
    };
    if gs == gd {
        return if local_alive(s, d) {
            vec![Path::from_switches(&[s, d])]
        } else {
            Vec::new()
        };
    }
    // `deg.gateways` already excludes dead cables and dead gateway
    // switches; only the endpoint-local hops remain to check.
    let gws = deg.gateways(gs, gd);
    let mut out = Vec::with_capacity(gws.len());
    for &(u, v, _) in gws {
        if u != s && !local_alive(s, u) {
            continue;
        }
        if v != d && !local_alive(v, d) {
            continue;
        }
        let mut p = Path::single(s);
        if u != s {
            p.push(u);
        }
        p.push(v);
        if v != d {
            p.push(d);
        }
        out.push(p);
    }
    out
}

/// [`vlb_paths_via`] over the degraded view: every combination of a
/// surviving MIN path `s → i` and a surviving MIN path `i → d`.
pub fn vlb_paths_via_degraded(
    topo: &Dragonfly,
    deg: &Degraded,
    s: SwitchId,
    d: SwitchId,
    i: SwitchId,
) -> Vec<Path> {
    debug_assert_ne!(topo.group_of(i), topo.group_of(s));
    debug_assert_ne!(topo.group_of(i), topo.group_of(d));
    let first = min_paths_degraded(topo, deg, s, i);
    let second = min_paths_degraded(topo, deg, i, d);
    let mut out = Vec::with_capacity(first.len() * second.len());
    for a in &first {
        for b in &second {
            out.push(a.concat(b));
        }
    }
    out
}

/// [`all_vlb_paths`] over the degraded view: dead intermediates are
/// skipped and both MIN segments must survive.
///
/// The result equals `all_vlb_paths` filtered by [`path_alive`], in the
/// same order: a surviving composite contains every switch and channel
/// that generated it, so it is (re)produced at exactly the surviving
/// generation points and first-occurrence deduplication picks the same
/// representatives.
pub fn all_vlb_paths_degraded(
    topo: &Dragonfly,
    deg: &Degraded,
    s: SwitchId,
    d: SwitchId,
) -> Vec<Path> {
    if deg.switch_dead(s) || deg.switch_dead(d) {
        return Vec::new();
    }
    let (gs, gd) = (topo.group_of(s), topo.group_of(d));
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for gi in 0..topo.num_groups() as u32 {
        let gi = GroupId(gi);
        if gi == gs || gi == gd {
            continue;
        }
        for i in topo.switches_in_group(gi) {
            if deg.switch_dead(i) {
                continue;
            }
            for p in vlb_paths_via_degraded(topo, deg, s, d, i) {
                if seen.insert(p) {
                    out.push(p);
                }
            }
        }
    }
    out
}

/// All positions `k` at which a VLB path can be split into
/// `MIN(src, switch(k)) ++ MIN(switch(k), dst)` with `switch(k)` a valid
/// intermediate (outside both endpoint groups).
///
/// The split point of a VLB path is not always unique; the *strategic*
/// choices of §3.3.3 ("all 2-hop MIN paths followed by 3-hop MIN paths")
/// therefore classify a path by whether *some* valid decomposition has the
/// requested first-segment length.
pub fn split_lengths(topo: &Dragonfly, p: &Path) -> Vec<usize> {
    // A MIN segment's hop-kind shape is one of: g, lg, gl, lgl.
    fn is_min_shape(kinds: &[bool]) -> bool {
        // `true` = global hop.
        matches!(
            kinds,
            [true] | [false, true] | [true, false] | [false, true, false]
        )
    }
    let (gs, gd) = (topo.group_of(p.src()), topo.group_of(p.dst()));
    let kinds: Vec<bool> = (0..p.hops())
        .map(|i| p.hop_kind(topo, i) == tugal_topology::ChannelKind::Global)
        .collect();
    (1..p.hops())
        .filter(|&k| {
            let i = p.switch(k);
            let gi = topo.group_of(i);
            gi != gs && gi != gd && is_min_shape(&kinds[..k]) && is_min_shape(&kinds[k..])
        })
        .collect()
}

/// Checks the structural invariants of a MIN or VLB path: every hop is an
/// existing channel and at most two global links are used.  Repeated
/// switches are allowed — VLB walks legitimately revisit switches (see
/// [`all_vlb_paths`]).
pub fn validate_path(topo: &Dragonfly, p: &Path) -> Result<(), ValidationError> {
    for i in 0..p.hops() {
        let (u, v) = p.hop(i);
        if topo.channel_between(u, v).is_none() {
            return Err(ValidationError::MissingChannel(i));
        }
    }
    let g = p.global_hops(topo);
    if g > 2 {
        return Err(ValidationError::TooManyGlobalHops(g));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tugal_topology::DragonflyParams;

    fn topo(p: u32, a: u32, h: u32, g: u32) -> Dragonfly {
        Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap()
    }

    #[test]
    fn min_same_switch_and_same_group() {
        let t = topo(2, 4, 2, 9);
        let p = min_paths(&t, SwitchId(0), SwitchId(0));
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].hops(), 0);
        let p = min_paths(&t, SwitchId(0), SwitchId(3));
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].hops(), 1);
    }

    #[test]
    fn min_inter_group_one_per_link() {
        // dfly(2,4,2,9) is maximal: one link per group pair -> one MIN path.
        let t = topo(2, 4, 2, 9);
        let p = min_paths(&t, SwitchId(0), SwitchId(4));
        assert_eq!(p.len(), 1);
        assert!(p[0].hops() <= 3 && p[0].hops() >= 1);
        assert_eq!(p[0].global_hops(&t), 1);

        // dfly(2,4,2,3): 4 links per pair -> 4 MIN paths.
        let t = topo(2, 4, 2, 3);
        let p = min_paths(&t, SwitchId(0), SwitchId(4));
        assert_eq!(p.len(), 4);
        for path in &p {
            assert_eq!(path.global_hops(&t), 1);
            validate_path(&t, path).unwrap();
        }
    }

    #[test]
    fn min_hop_count_range_paper() {
        // "A typical minimal path ... 3 hops; may have fewer depending on
        // the positions of the source and the destination."
        let t = topo(4, 8, 4, 9);
        let mut lens = HashSet::new();
        for d in 8..16 {
            for s in 0..8 {
                for p in min_paths(&t, SwitchId(s), SwitchId(d)) {
                    lens.insert(p.hops());
                }
            }
        }
        assert!(lens.contains(&3));
        assert!(lens.iter().all(|&l| (1..=3).contains(&l)));
    }

    #[test]
    fn vlb_paths_have_two_global_hops_and_2_to_6_length() {
        let t = topo(4, 8, 4, 9);
        let vlb = all_vlb_paths(&t, SwitchId(0), SwitchId(9));
        assert!(!vlb.is_empty());
        for p in &vlb {
            assert_eq!(p.global_hops(&t), 2, "{p:?}");
            assert!((2..=6).contains(&p.hops()), "{p:?}");
            validate_path(&t, p).unwrap();
            assert_eq!(p.src(), SwitchId(0));
            assert_eq!(p.dst(), SwitchId(9));
        }
    }

    #[test]
    fn vlb_avoids_endpoint_groups_as_intermediate() {
        let t = topo(2, 4, 2, 9);
        let s = SwitchId(0);
        let d = SwitchId(4);
        for p in all_vlb_paths(&t, s, d) {
            // Some switch strictly outside both endpoint groups is visited.
            assert!(p
                .switches()
                .any(|x| t.group_of(x) != t.group_of(s) && t.group_of(x) != t.group_of(d)));
        }
    }

    #[test]
    fn vlb_deduplication() {
        let t = topo(2, 4, 2, 3);
        let s = SwitchId(0);
        let d = SwitchId(4);
        let paths = all_vlb_paths(&t, s, d);
        let set: HashSet<_> = paths.iter().copied().collect();
        assert_eq!(set.len(), paths.len(), "duplicates survived dedup");
    }

    #[test]
    fn vlb_count_matches_structure_for_maximal_topology() {
        // Maximal topology: 1 link per group pair, so exactly one MIN path
        // per (ordered) switch pair across groups.  VLB paths via switch i:
        // 1 x 1.  Intermediates: (g-2)*a = 28 switches; dedup can only
        // remove paths when distinct intermediates yield identical sequences
        // (split-point ambiguity), so 20 < count <= 28.
        let t = topo(2, 4, 2, 9);
        let vlb = all_vlb_paths(&t, SwitchId(0), SwitchId(4));
        assert!(vlb.len() <= 7 * 4, "got {}", vlb.len());
        assert!(vlb.len() > 20, "got {}", vlb.len());
    }

    #[test]
    fn same_group_vlb_walks_exist_on_maximal_topology() {
        // With one cable per group pair, a same-group VLB path must bounce
        // out and back over the same cable: a non-simple walk.  These must
        // be kept or same-group pairs would have no VLB candidates at all.
        let t = topo(2, 4, 2, 9);
        let vlb = all_vlb_paths(&t, SwitchId(0), SwitchId(1));
        assert!(!vlb.is_empty());
        assert!(vlb.iter().any(|p| !p.is_simple()));
        for p in &vlb {
            validate_path(&t, p).unwrap();
            assert_eq!(p.global_hops(&t), 2);
        }
    }

    #[test]
    fn typical_vlb_is_six_hops() {
        let t = topo(4, 8, 4, 33);
        let vlb = all_vlb_paths(&t, SwitchId(0), SwitchId(8));
        let six = vlb.iter().filter(|p| p.hops() == 6).count();
        // In a maximal topology most VLB paths are the full l-g-l-l-g-l.
        assert!(six * 2 > vlb.len());
    }

    #[test]
    fn validate_rejects_bad_paths() {
        let t = topo(2, 4, 2, 3);
        // Unconnected hop: two switches in different groups without a link.
        let mut missing = None;
        'outer: for s in 4..8 {
            for d in 8..12 {
                if t.channel_between(SwitchId(s), SwitchId(d)).is_none() {
                    missing = Some((s, d));
                    break 'outer;
                }
            }
        }
        let (s, d) = missing.expect("expected some unlinked cross-group pair");
        let p = Path::from_switches(&[SwitchId(s), SwitchId(d)]);
        assert_eq!(
            validate_path(&t, &p),
            Err(ValidationError::MissingChannel(0))
        );
        // A walk with repeated switches is fine as long as it is wired.
        let p = Path::from_switches(&[SwitchId(0), SwitchId(1), SwitchId(0)]);
        assert_eq!(validate_path(&t, &p), Ok(()));
    }
}
