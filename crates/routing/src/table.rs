//! Explicit per-switch-pair path tables.

use crate::enumerate::{
    all_vlb_paths, all_vlb_paths_degraded, min_paths, min_paths_degraded, path_alive, split_lengths,
};
use crate::path::Path;
use crate::rule::VlbRule;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tugal_topology::{Degraded, Dragonfly, SwitchId};

/// The candidate paths of one (source switch, destination switch) pair.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct PairPaths {
    /// MIN candidates (one per global link between the endpoint groups).
    pub min: Vec<Path>,
    /// VLB candidates — all of them for conventional UGAL, a topology-custom
    /// subset (T-VLB) for T-UGAL.
    pub vlb: Vec<Path>,
}

/// Summary of how a fault set reshaped a [`PathTable`], produced by
/// [`PathTable::degrade`].
///
/// "Unreachable" counts ordered pairs left with *no* candidate of either
/// kind — including pairs whose endpoint switch died (those can never be
/// served and the simulator drops their traffic at injection).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReachabilityReport {
    /// Ordered switch pairs examined (`n·(n-1)`).
    pub pairs: usize,
    /// MIN candidates removed because a hop died.
    pub removed_min: usize,
    /// VLB candidates removed because a hop died.
    pub removed_vlb: usize,
    /// Pairs whose emptied VLB set was refilled from the degraded
    /// enumeration (T-VLB regeneration).
    pub regenerated_pairs: usize,
    /// Pairs left with no MIN candidate.
    pub pairs_without_min: usize,
    /// Pairs left with no VLB candidate (after regeneration).
    pub pairs_without_vlb: usize,
    /// Pairs left with no candidate at all.
    pub unreachable_pairs: usize,
}

/// Applies `rule` to one pair's VLB set; `pair_idx` must be the pair's
/// row-major index so the per-pair RNG stream matches
/// [`PathTable::apply_rule`].
fn apply_rule_pair(
    topo: &Dragonfly,
    pp: &mut PairPaths,
    rule: VlbRule,
    seed: u64,
    pair_idx: usize,
) {
    match rule {
        VlbRule::All => {}
        VlbRule::ClassLimit {
            max_hops,
            frac_next,
        } => {
            let mut keep: Vec<Path> = Vec::with_capacity(pp.vlb.len());
            let mut next: Vec<Path> = Vec::new();
            for &p in &pp.vlb {
                if p.hops() <= max_hops as usize {
                    keep.push(p);
                } else if p.hops() == max_hops as usize + 1 {
                    next.push(p);
                }
            }
            if frac_next > 0.0 && !next.is_empty() {
                // Independent, reproducible stream per pair.
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ (pair_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                next.shuffle(&mut rng);
                let take = ((next.len() as f64) * frac_next).round() as usize;
                keep.extend_from_slice(&next[..take.min(next.len())]);
            }
            // Never leave a pair without VLB candidates: keep the
            // shortest class if the cutoff removed everything.
            if keep.is_empty() && !pp.vlb.is_empty() {
                let shortest = pp.vlb.iter().map(|p| p.hops()).min().unwrap();
                keep.extend(pp.vlb.iter().copied().filter(|p| p.hops() == shortest));
            }
            pp.vlb = keep;
        }
        VlbRule::Strategic { first_seg } => {
            pp.vlb.retain(|p| {
                p.hops() <= 4
                    || (p.hops() == 5 && split_lengths(topo, p).contains(&(first_seg as usize)))
            });
        }
    }
}

impl PairPaths {
    /// Average hop count of the VLB candidates (`None` when empty).
    pub fn mean_vlb_hops(&self) -> Option<f64> {
        if self.vlb.is_empty() {
            return None;
        }
        Some(self.vlb.iter().map(|p| p.hops() as f64).sum::<f64>() / self.vlb.len() as f64)
    }
}

/// Explicit path table: candidate MIN and VLB paths for every ordered pair
/// of distinct switches.
///
/// Memory is O(#pairs × #paths); the paper's `dfly(4,8,4,17)` (136 switches)
/// fits comfortably, while `dfly(13,26,13,27)` does not and uses the
/// on-the-fly [`crate::RuleProvider`] instead.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PathTable {
    n: usize,
    pairs: Vec<PairPaths>,
}

impl PathTable {
    /// Builds the conventional-UGAL table: all MIN and all VLB paths.
    pub fn build_all(topo: &Dragonfly) -> Self {
        Self::build_filtered(topo, None, |_, _, _| true)
    }

    /// Builds a table whose VLB sets satisfy `rule`.
    ///
    /// `seed` drives the random selection of fractional classes
    /// ("`f`% of the (m+1)-hop paths"); each pair derives an independent
    /// stream so tables are reproducible.
    pub fn build_with_rule(topo: &Dragonfly, rule: VlbRule, seed: u64) -> Self {
        let mut t = Self::build_all(topo);
        t.apply_rule(topo, rule, seed);
        t
    }

    /// [`PathTable::build_all`] over a degraded view: every candidate
    /// survives the fault set.  With a pristine view the result is
    /// byte-identical to `build_all` (pinned by the differential tests).
    pub fn build_all_degraded(topo: &Dragonfly, deg: &Degraded) -> Self {
        Self::build_filtered(topo, Some(deg), |_, _, _| true)
    }

    /// [`PathTable::build_with_rule`] over a degraded view.
    pub fn build_with_rule_degraded(
        topo: &Dragonfly,
        deg: &Degraded,
        rule: VlbRule,
        seed: u64,
    ) -> Self {
        let mut t = Self::build_all_degraded(topo, deg);
        t.apply_rule(topo, rule, seed);
        t
    }

    fn build_filtered(
        topo: &Dragonfly,
        deg: Option<&Degraded>,
        keep: impl Fn(&Dragonfly, &Path, usize) -> bool,
    ) -> Self {
        let n = topo.num_switches();
        let mut pairs = Vec::with_capacity(n * n);
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                let (s, d) = (SwitchId(s), SwitchId(d));
                if s == d {
                    pairs.push(PairPaths::default());
                    continue;
                }
                let min = match deg {
                    Some(dg) => min_paths_degraded(topo, dg, s, d),
                    None => min_paths(topo, s, d),
                };
                let vlb = match deg {
                    Some(dg) => all_vlb_paths_degraded(topo, dg, s, d),
                    None => all_vlb_paths(topo, s, d),
                }
                .into_iter()
                .filter(|p| keep(topo, p, p.hops()))
                .collect();
                pairs.push(PairPaths { min, vlb });
            }
        }
        PathTable { n, pairs }
    }

    /// Number of switches the table covers.
    pub fn num_switches(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, s: SwitchId, d: SwitchId) -> usize {
        s.index() * self.n + d.index()
    }

    /// Candidate paths of a pair.
    #[inline]
    pub fn pair(&self, s: SwitchId, d: SwitchId) -> &PairPaths {
        &self.pairs[self.idx(s, d)]
    }

    /// Mutable candidate paths of a pair.
    #[inline]
    pub fn pair_mut(&mut self, s: SwitchId, d: SwitchId) -> &mut PairPaths {
        let i = self.idx(s, d);
        &mut self.pairs[i]
    }

    /// Restricts every pair's VLB set to `rule`.
    ///
    /// The rule is applied to the *current* VLB sets, so it can only shrink
    /// them; build a fresh table to widen.
    pub fn apply_rule(&mut self, topo: &Dragonfly, rule: VlbRule, seed: u64) {
        if rule.is_all() {
            return;
        }
        for (i, pp) in self.pairs.iter_mut().enumerate() {
            apply_rule_pair(topo, pp, rule, seed, i);
        }
    }

    /// Restricts this table to paths alive in `deg`, in place, and
    /// regenerates T-VLB candidate sets that the faults emptied.
    ///
    /// Dead candidates are removed from every pair (preserving order, so a
    /// pristine view leaves the table byte-identical).  When a pair's VLB
    /// set empties but both endpoints are alive, fresh candidates are
    /// enumerated from the degraded view and re-restricted with `rule`
    /// under the same `seed` and pair index as the original construction —
    /// this is the T-VLB regeneration path: a custom subset whose paths
    /// all died falls back to the best surviving candidates rather than
    /// losing adaptivity for that pair.
    ///
    /// Returns a [`ReachabilityReport`] summarizing what changed.
    pub fn degrade(
        &mut self,
        topo: &Dragonfly,
        deg: &Degraded,
        rule: VlbRule,
        seed: u64,
    ) -> ReachabilityReport {
        let mut rep = ReachabilityReport::default();
        for s in 0..self.n as u32 {
            for d in 0..self.n as u32 {
                if s == d {
                    continue;
                }
                let (s, d) = (SwitchId(s), SwitchId(d));
                let i = self.idx(s, d);
                let pp = &mut self.pairs[i];
                rep.pairs += 1;
                let before_min = pp.min.len();
                let before_vlb = pp.vlb.len();
                pp.min.retain(|p| path_alive(topo, deg, p));
                pp.vlb.retain(|p| path_alive(topo, deg, p));
                rep.removed_min += before_min - pp.min.len();
                rep.removed_vlb += before_vlb - pp.vlb.len();
                if pp.vlb.is_empty() && before_vlb > 0 && !deg.switch_dead(s) && !deg.switch_dead(d)
                {
                    let mut fresh = PairPaths {
                        min: Vec::new(),
                        vlb: all_vlb_paths_degraded(topo, deg, s, d),
                    };
                    apply_rule_pair(topo, &mut fresh, rule, seed, i);
                    if !fresh.vlb.is_empty() {
                        pp.vlb = fresh.vlb;
                        rep.regenerated_pairs += 1;
                    }
                }
                if pp.min.is_empty() {
                    rep.pairs_without_min += 1;
                }
                if pp.vlb.is_empty() {
                    rep.pairs_without_vlb += 1;
                }
                if pp.min.is_empty() && pp.vlb.is_empty() {
                    rep.unreachable_pairs += 1;
                }
            }
        }
        rep
    }

    /// Average VLB hop count over all pairs with at least one VLB path.
    pub fn mean_vlb_hops(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for pp in &self.pairs {
            sum += pp.vlb.iter().map(|p| p.hops() as f64).sum::<f64>();
            count += pp.vlb.len();
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Histogram of VLB path hop counts over the whole table
    /// (`counts[h]` = number of h-hop VLB candidates).
    pub fn vlb_class_counts(&self) -> [u64; 8] {
        let mut counts = [0u64; 8];
        for pp in &self.pairs {
            for p in &pp.vlb {
                counts[p.hops()] += 1;
            }
        }
        counts
    }

    /// Total number of VLB candidates stored.
    pub fn total_vlb_paths(&self) -> u64 {
        self.pairs.iter().map(|pp| pp.vlb.len() as u64).sum()
    }

    /// Serializes the table into a compact binary blob (a computed T-VLB
    /// is a design-time artifact the paper expects to ship with the
    /// network; this is the shipping format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        for pp in &self.pairs {
            for list in [&pp.min, &pp.vlb] {
                out.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for p in list {
                    let switches: Vec<u16> = p.switches().map(|s| s.0 as u16).collect();
                    out.push(switches.len() as u8);
                    for sw in switches {
                        out.extend_from_slice(&sw.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Reverses [`PathTable::to_bytes`].  Returns `None` on malformed
    /// input.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut cur = 0usize;
        let take = |cur: &mut usize, n: usize| -> Option<&[u8]> {
            let s = data.get(*cur..*cur + n)?;
            *cur += n;
            Some(s)
        };
        let n = u64::from_le_bytes(take(&mut cur, 8)?.try_into().ok()?) as usize;
        let mut pairs = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            let mut pp = PairPaths::default();
            for which in 0..2 {
                let count = u32::from_le_bytes(take(&mut cur, 4)?.try_into().ok()?) as usize;
                let list = if which == 0 { &mut pp.min } else { &mut pp.vlb };
                list.reserve(count);
                for _ in 0..count {
                    let len = *take(&mut cur, 1)?.first()? as usize;
                    if len == 0 || len > crate::MAX_HOPS + 1 {
                        return None;
                    }
                    let mut switches = Vec::with_capacity(len);
                    for _ in 0..len {
                        let sw = u16::from_le_bytes(take(&mut cur, 2)?.try_into().ok()?);
                        switches.push(tugal_topology::SwitchId(sw as u32));
                    }
                    list.push(Path::from_switches(&switches));
                }
            }
            pairs.push(pp);
        }
        (cur == data.len()).then_some(PathTable { n, pairs })
    }
}
