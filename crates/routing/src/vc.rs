//! Virtual-channel classes for deadlock freedom.
//!
//! A routing scheme on Dragonfly is deadlock-free if the (channel, VC)
//! dependency graph is acyclic.  Both schemes below assign every hop of a
//! path a *VC class* that strictly increases along the path **per channel
//! type**; since local and global channels are disjoint resources, any cycle
//! in the dependency graph would have to revisit some channel type at the
//! same or lower class, which the monotone assignment forbids.
//!
//! * [`VcScheme::Compact`] — the allocation of Won et al. (HPCA'15) that the
//!   paper uses: the class of a hop is the number of *earlier hops of the
//!   same type* on the path.  A VLB path is at worst `l g l l g l`, i.e. 4
//!   local classes and 2 global classes, so **4 VCs** suffice for UGAL-L and
//!   UGAL-G.  A PAR reroute prepends one extra local hop in the source
//!   group, requiring **5 VCs** — exactly the paper's Table 3 values.
//! * [`VcScheme::PerHop`] — "a new virtual channel every hop", the simple
//!   scheme the paper calls `routing(6)` in Figure 18: the class is the hop
//!   index, so 6 VCs for a full VLB path.

use crate::path::Path;
use serde::{Deserialize, Serialize};
use tugal_topology::{ChannelKind, Dragonfly};

/// Virtual-channel allocation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcScheme {
    /// Won et al. compact scheme (4 VCs for UGAL, 5 for PAR).
    Compact,
    /// New VC every hop (`routing(6)` in Figure 18).
    PerHop,
}

/// VC class of hop `hop_idx` of `path`.
///
/// `taken_local` / `taken_global` are the numbers of local/global hops the
/// packet took *before entering this path* — zero except after a PAR
/// reroute, where the packet has already taken one local hop that its new
/// path does not contain.
pub fn vc_class(
    scheme: VcScheme,
    topo: &Dragonfly,
    path: &Path,
    hop_idx: usize,
    taken_local: u8,
    taken_global: u8,
) -> u8 {
    debug_assert!(hop_idx < path.hops());
    match scheme {
        VcScheme::Compact => {
            let kind = path.hop_kind(topo, hop_idx);
            let mut same = match kind {
                ChannelKind::Local => taken_local,
                _ => taken_global,
            };
            for i in 0..hop_idx {
                if path.hop_kind(topo, i) == kind {
                    same += 1;
                }
            }
            same
        }
        VcScheme::PerHop => taken_local + taken_global + hop_idx as u8,
    }
}

/// Number of VCs a configuration must provision to be deadlock free.
///
/// `progressive` is true for PAR, which can take one extra source-group hop.
pub fn required_vcs(scheme: VcScheme, progressive: bool) -> u8 {
    match (scheme, progressive) {
        (VcScheme::Compact, false) => 4,
        (VcScheme::Compact, true) => 5,
        (VcScheme::PerHop, false) => 6,
        (VcScheme::PerHop, true) => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{all_vlb_paths, min_paths};
    use tugal_topology::{DragonflyParams, SwitchId};

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::new(4, 8, 4, 9)).unwrap()
    }

    #[test]
    fn required_vcs_match_paper_table3() {
        assert_eq!(required_vcs(VcScheme::Compact, false), 4);
        assert_eq!(required_vcs(VcScheme::Compact, true), 5);
        assert_eq!(required_vcs(VcScheme::PerHop, false), 6);
    }

    #[test]
    fn compact_classes_fit_in_required_vcs() {
        let t = topo();
        for d in [SwitchId(9), SwitchId(17), SwitchId(70)] {
            for p in all_vlb_paths(&t, SwitchId(0), d) {
                for i in 0..p.hops() {
                    let c = vc_class(VcScheme::Compact, &t, &p, i, 0, 0);
                    assert!(c < 4, "class {c} at hop {i} of {p:?}");
                }
            }
        }
    }

    #[test]
    fn perhop_classes_fit_in_required_vcs() {
        let t = topo();
        for p in all_vlb_paths(&t, SwitchId(0), SwitchId(9)) {
            for i in 0..p.hops() {
                let c = vc_class(VcScheme::PerHop, &t, &p, i, 0, 0);
                assert!(c < 6);
                assert_eq!(c as usize, i);
            }
        }
    }

    #[test]
    fn par_offset_fits_in_five_vcs() {
        // After a PAR reroute the packet took one local hop already.
        let t = topo();
        for p in all_vlb_paths(&t, SwitchId(1), SwitchId(9)) {
            for i in 0..p.hops() {
                let c = vc_class(VcScheme::Compact, &t, &p, i, 1, 0);
                assert!(c < 5, "class {c} at hop {i} of {p:?}");
            }
        }
    }

    #[test]
    fn classes_strictly_increase_per_type() {
        let t = topo();
        for p in all_vlb_paths(&t, SwitchId(0), SwitchId(30)) {
            let mut last_local: i32 = -1;
            let mut last_global: i32 = -1;
            for i in 0..p.hops() {
                let c = vc_class(VcScheme::Compact, &t, &p, i, 0, 0) as i32;
                match p.hop_kind(&t, i) {
                    ChannelKind::Local => {
                        assert!(c > last_local);
                        last_local = c;
                    }
                    _ => {
                        assert!(c > last_global);
                        last_global = c;
                    }
                }
            }
        }
    }

    #[test]
    fn min_paths_use_low_classes() {
        let t = topo();
        for p in min_paths(&t, SwitchId(0), SwitchId(9)) {
            for i in 0..p.hops() {
                assert!(vc_class(VcScheme::Compact, &t, &p, i, 0, 0) < 2);
            }
        }
    }
}
