//! # Paths and path sets for UGAL routing on Dragonfly
//!
//! This crate implements the path machinery of the paper:
//!
//! * **MIN paths** — minimal paths with at most one global link (§2.2).
//!   Between two groups there is one MIN path per global link connecting the
//!   groups, so non-maximal topologies already have MIN path diversity.
//! * **VLB paths** — a MIN path to an intermediate switch outside the source
//!   and destination groups, followed by a MIN path to the destination
//!   (Valiant load balancing).  VLB paths are 2–6 hops long.
//! * **Path tables** — explicit per-switch-pair candidate path sets
//!   ([`PathTable`]).  Conventional UGAL uses *all* VLB paths; T-UGAL
//!   restricts each pair's VLB set to a shorter-on-average subset (T-VLB).
//! * **Path providers** — the sampling interface the simulator's routing
//!   functions use to draw one MIN and one VLB candidate per packet
//!   ([`PathProvider`]); an explicit-table provider for small networks and
//!   an on-the-fly rejection sampler ([`RuleProvider`]) whose memory is O(1)
//!   for networks too large to tabulate (e.g. `dfly(13,26,13,27)` has ~10⁵
//!   VLB paths per pair).
//! * **Virtual-channel classes** — per-hop VC assignment that keeps the
//!   channel dependency graph acyclic (deadlock freedom): the compact scheme
//!   needs 4 VCs for UGAL-L/G and 5 for PAR exactly as the paper configures,
//!   and the naive new-VC-per-hop scheme is `routing(6)` of Figure 18.

#![warn(missing_docs)]

mod enumerate;
mod path;
mod provider;
mod rule;
mod store;
mod table;
mod vc;

pub use enumerate::{
    all_vlb_paths, all_vlb_paths_degraded, min_paths, min_paths_degraded, path_alive,
    split_lengths, validate_path, vlb_paths_via, vlb_paths_via_degraded, ValidationError,
};
pub use path::{Path, MAX_HOPS};
pub use provider::{PathProvider, RuleProvider, TableProvider};
pub use rule::VlbRule;
pub use store::{PathId, PathRef, PathStore};
pub use table::{PairPaths, PathTable, ReachabilityReport};
pub use vc::{required_vcs, vc_class, VcScheme};

#[cfg(test)]
mod tests;
