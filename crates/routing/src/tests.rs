//! Cross-module routing tests: tables, rules, providers.

use crate::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use tugal_topology::{Dragonfly, DragonflyParams, SwitchId};

fn topo(p: u32, a: u32, h: u32, g: u32) -> Arc<Dragonfly> {
    Arc::new(Dragonfly::new(DragonflyParams::new(p, a, h, g)).unwrap())
}

#[test]
fn table_build_all_small() {
    let t = topo(2, 4, 2, 9);
    let table = PathTable::build_all(&t);
    assert_eq!(table.num_switches(), 36);
    let pp = table.pair(SwitchId(0), SwitchId(4));
    assert_eq!(pp.min.len(), 1); // maximal topology: one link per pair
    assert!(!pp.vlb.is_empty());
    // Intra-switch pair has no candidates.
    assert!(table.pair(SwitchId(0), SwitchId(0)).min.is_empty());
}

#[test]
fn class_limit_rule_shrinks_and_keeps_fraction() {
    let t = topo(2, 4, 2, 3);
    let full = PathTable::build_all(&t);
    let limited = PathTable::build_with_rule(
        &t,
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.5,
        },
        7,
    );
    let (s, d) = (SwitchId(0), SwitchId(4));
    let full_p = full.pair(s, d);
    let lim_p = limited.pair(s, d);
    let full5 = full_p.vlb.iter().filter(|p| p.hops() == 5).count();
    let lim5 = lim_p.vlb.iter().filter(|p| p.hops() == 5).count();
    let full_le4 = full_p.vlb.iter().filter(|p| p.hops() <= 4).count();
    let lim_le4 = lim_p.vlb.iter().filter(|p| p.hops() <= 4).count();
    assert_eq!(full_le4, lim_le4, "<=4-hop paths must all be kept");
    assert_eq!(lim5, (full5 as f64 * 0.5).round() as usize);
    assert!(lim_p.vlb.iter().all(|p| p.hops() <= 5));
    assert!(limited.mean_vlb_hops() < full.mean_vlb_hops());
}

#[test]
fn class_limit_rule_is_reproducible() {
    let t = topo(2, 4, 2, 3);
    let rule = VlbRule::ClassLimit {
        max_hops: 4,
        frac_next: 0.3,
    };
    let a = PathTable::build_with_rule(&t, rule, 42);
    let b = PathTable::build_with_rule(&t, rule, 42);
    let c = PathTable::build_with_rule(&t, rule, 43);
    let (s, d) = (SwitchId(0), SwitchId(5));
    assert_eq!(a.pair(s, d).vlb, b.pair(s, d).vlb);
    // Different seed almost surely picks a different 5-hop subset somewhere.
    let same_everywhere = (0..t.num_switches() as u32).all(|s| {
        (0..t.num_switches() as u32)
            .all(|d| a.pair(SwitchId(s), SwitchId(d)).vlb == c.pair(SwitchId(s), SwitchId(d)).vlb)
    });
    assert!(!same_everywhere);
}

#[test]
fn strategic_rule_fixes_first_segment() {
    let t = topo(4, 8, 4, 9);
    let table = PathTable::build_with_rule(&t, VlbRule::Strategic { first_seg: 2 }, 0);
    let pp = table.pair(SwitchId(0), SwitchId(9));
    assert!(!pp.vlb.is_empty());
    for p in &pp.vlb {
        assert!(p.hops() <= 5);
        if p.hops() == 5 {
            assert!(
                split_lengths_contains(&t, p, 2),
                "5-hop path {p:?} has no 2+3 decomposition"
            );
        }
    }
}

fn split_lengths_contains(t: &Dragonfly, p: &Path, k: usize) -> bool {
    crate::enumerate::split_lengths(t, p).contains(&k)
}

#[test]
fn rule_never_empties_a_pair() {
    let t = topo(2, 4, 2, 9);
    // In the maximal topology 3-hop VLB paths may not exist for some pairs;
    // the fallback must keep the shortest class instead.
    let table = PathTable::build_with_rule(
        &t,
        VlbRule::ClassLimit {
            max_hops: 2,
            frac_next: 0.0,
        },
        0,
    );
    for s in 0..36u32 {
        for d in 0..36u32 {
            if s == d {
                continue;
            }
            assert!(
                !table.pair(SwitchId(s), SwitchId(d)).vlb.is_empty(),
                "pair ({s},{d}) lost all VLB candidates"
            );
        }
    }
}

#[test]
fn table_provider_samples_from_table() {
    let t = topo(2, 4, 2, 3);
    let provider = TableProvider::all_paths(t.clone());
    let mut rng = SmallRng::seed_from_u64(1);
    let (s, d) = (SwitchId(0), SwitchId(7));
    for _ in 0..100 {
        let m = provider.sample_min(s, d, &mut rng);
        assert!(provider.table().pair(s, d).min.contains(&m));
        let v = provider.sample_vlb(s, d, &mut rng);
        assert!(provider.table().pair(s, d).vlb.contains(&v));
    }
    // Degenerate pair.
    let p = provider.sample_vlb(s, s, &mut rng);
    assert_eq!(p.hops(), 0);
}

#[test]
fn rule_provider_matches_rule() {
    let t = topo(4, 8, 4, 9);
    let rule = VlbRule::ClassLimit {
        max_hops: 4,
        frac_next: 0.0,
    };
    let provider = RuleProvider::new(t.clone(), rule);
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..500 {
        let p = provider.sample_vlb(SwitchId(0), SwitchId(9), &mut rng);
        assert!(p.hops() <= 4, "{p:?}");
        assert_eq!(p.src(), SwitchId(0));
        assert_eq!(p.dst(), SwitchId(9));
    }
}

#[test]
fn rule_provider_all_matches_vlb_structure() {
    let t = topo(4, 8, 4, 9);
    let provider = RuleProvider::new(t.clone(), VlbRule::All);
    let mut rng = SmallRng::seed_from_u64(9);
    for _ in 0..500 {
        let p = provider.sample_vlb(SwitchId(3), SwitchId(40), &mut rng);
        assert!((2..=6).contains(&p.hops()));
        assert_eq!(p.global_hops(&t), 2);
    }
}

#[test]
fn rule_provider_strategic_shapes() {
    let t = topo(4, 8, 4, 9);
    let provider = RuleProvider::new(t.clone(), VlbRule::Strategic { first_seg: 3 });
    let mut rng = SmallRng::seed_from_u64(11);
    let mut saw5 = false;
    for _ in 0..500 {
        let p = provider.sample_vlb(SwitchId(0), SwitchId(9), &mut rng);
        assert!(p.hops() <= 5);
        if p.hops() == 5 {
            saw5 = true;
            assert!(split_lengths_contains(&t, &p, 3), "{p:?}");
        }
    }
    assert!(saw5);
}

#[test]
fn rule_provider_min_sampling_spreads_over_gateways() {
    let t = topo(4, 8, 4, 9); // 4 links per group pair
    let provider = RuleProvider::new(t.clone(), VlbRule::All);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..200 {
        let p = provider.sample_min(SwitchId(0), SwitchId(9), &mut rng);
        seen.insert(p);
        assert_eq!(p.global_hops(&t), 1);
    }
    assert_eq!(seen.len(), 4, "should hit all 4 MIN paths");
}

#[test]
fn two_group_degenerate_network() {
    let t = topo(1, 2, 1, 2);
    let provider = RuleProvider::new(t.clone(), VlbRule::All);
    let mut rng = SmallRng::seed_from_u64(2);
    // Cross-group pair has no valid intermediate group: degrade to MIN.
    let p = provider.sample_vlb(SwitchId(0), SwitchId(2), &mut rng);
    assert_eq!(p.global_hops(&t), 1);
    // Same-group pair can still detour through the other group.
    let p = provider.sample_vlb(SwitchId(0), SwitchId(1), &mut rng);
    assert!(p.hops() >= 1);
}

#[test]
fn mean_vlb_hops_reported() {
    let t = topo(2, 4, 2, 3);
    let all = TableProvider::all_paths(t.clone());
    let rule = RuleProvider::new(t.clone(), VlbRule::All);
    let a = all.mean_vlb_hops();
    let b = rule.mean_vlb_hops();
    assert!(a > 3.0 && a <= 6.0, "{a}");
    assert!(b > 3.0 && b <= 6.0, "{b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_table_paths_valid(seed in 0u64..1000) {
        let t = topo(2, 4, 2, 5);
        let table = PathTable::build_with_rule(
            &t,
            VlbRule::ClassLimit { max_hops: 4, frac_next: 0.4 },
            seed,
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..32 {
            let s = SwitchId(rng.gen_range(0..20));
            let d = SwitchId(rng.gen_range(0..20));
            if s == d { continue; }
            let pp = table.pair(s, d);
            for p in pp.min.iter().chain(pp.vlb.iter()) {
                prop_assert!(p.is_wired(&t));
                prop_assert_eq!(p.src(), s);
                prop_assert_eq!(p.dst(), d);
            }
        }
    }

    #[test]
    fn prop_rule_provider_paths_valid(seed in 0u64..1000) {
        let t = topo(2, 4, 2, 9);
        let provider = RuleProvider::new(
            t.clone(),
            VlbRule::ClassLimit { max_hops: 4, frac_next: 0.5 },
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..32 {
            let s = SwitchId(rng.gen_range(0..36));
            let d = SwitchId(rng.gen_range(0..36));
            let p = provider.sample_vlb(s, d, &mut rng);
            prop_assert!(p.is_wired(&t));
            prop_assert_eq!(p.src(), s);
            prop_assert_eq!(p.dst(), d);
            let m = provider.sample_min(s, d, &mut rng);
            prop_assert!(m.is_wired(&t));
            prop_assert!(m.global_hops(&t) <= 1);
        }
    }
}

#[test]
fn path_table_binary_roundtrip() {
    let t = topo(2, 4, 2, 3);
    let table = PathTable::build_with_rule(
        &t,
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.5,
        },
        9,
    );
    let bytes = table.to_bytes();
    let back = PathTable::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(back.num_switches(), table.num_switches());
    assert_eq!(back.total_vlb_paths(), table.total_vlb_paths());
    for s in 0..12u32 {
        for d in 0..12u32 {
            let a = table.pair(SwitchId(s), SwitchId(d));
            let b = back.pair(SwitchId(s), SwitchId(d));
            assert_eq!(a.min, b.min);
            assert_eq!(a.vlb, b.vlb);
        }
    }
}

#[test]
fn path_table_from_bytes_rejects_garbage() {
    assert!(PathTable::from_bytes(&[]).is_none());
    assert!(PathTable::from_bytes(&[1, 2, 3]).is_none());
    // Valid header, truncated body.
    let t = topo(2, 4, 2, 3);
    let mut bytes = PathTable::build_all(&t).to_bytes();
    bytes.truncate(bytes.len() / 2);
    assert!(PathTable::from_bytes(&bytes).is_none());
    // Trailing junk.
    let mut bytes = PathTable::build_all(&t).to_bytes();
    bytes.push(0);
    assert!(PathTable::from_bytes(&bytes).is_none());
}
