//! Path enumeration across the topology zoo.
//!
//! The pinned contracts:
//!
//! * on every arrangement × lag, every enumerated MIN/VLB path validates
//!   against the topology (channels exist, hop classes are legal);
//! * cross-group pairs have exactly `links_per_group_pair()` MIN paths —
//!   the gateway sets, and with them MIN diversity, grow by the lag
//!   factor;
//! * `global_lag = 2` exactly doubles MIN diversity relative to the same
//!   arrangement at lag 1, and strictly enlarges the all-VLB set;
//! * path tables build and reach every pair on every zoo shape, and
//!   degradation of a single lag sibling leaves its partner sibling's
//!   MIN path alive.

use tugal_routing::{
    all_vlb_paths, min_paths, min_paths_degraded, path_alive, validate_path, PathTable,
};
use tugal_topology::{ArrangementSpec, Dragonfly, DragonflyParams, FaultSet, SwitchId};

fn shape(spec: &ArrangementSpec, lag: u32) -> Dragonfly {
    let params = DragonflyParams::new(2, 4, 2, 5);
    Dragonfly::with_shape(params, spec.build().as_ref(), lag).unwrap()
}

/// Switch pairs covering same-switch, same-group and cross-group cases.
fn probe_pairs(t: &Dragonfly) -> Vec<(SwitchId, SwitchId)> {
    let n = t.num_switches() as u32;
    vec![
        (SwitchId(0), SwitchId(0)),
        (SwitchId(0), SwitchId(1)),
        (SwitchId(0), SwitchId(n / 2)),
        (SwitchId(2), SwitchId(n - 1)),
        (SwitchId(n - 1), SwitchId(0)),
    ]
}

#[test]
fn every_zoo_shape_enumerates_valid_paths_with_lag_scaled_min_diversity() {
    for spec in ArrangementSpec::zoo(0x2007) {
        for lag in [1u32, 2] {
            let t = shape(&spec, lag);
            let tag = format!("{spec} lag{lag}");
            for (s, d) in probe_pairs(&t) {
                let mins = min_paths(&t, s, d);
                for p in &mins {
                    validate_path(&t, p).unwrap_or_else(|e| panic!("{tag}: {s}->{d}: {e:?}"));
                }
                if t.group_of(s) != t.group_of(d) {
                    assert_eq!(
                        mins.len() as u32,
                        t.links_per_group_pair(),
                        "{tag}: MIN diversity {s}->{d}"
                    );
                }
                for p in all_vlb_paths(&t, s, d) {
                    validate_path(&t, &p).unwrap_or_else(|e| panic!("{tag}: {s}->{d}: {e:?}"));
                }
            }
        }
    }
}

#[test]
fn lag_two_doubles_min_but_not_the_distinct_vlb_set() {
    for spec in ArrangementSpec::zoo(0x2007) {
        let (t1, t2) = (shape(&spec, 1), shape(&spec, 2));
        assert_eq!(t2.links_per_group_pair(), 2 * t1.links_per_group_pair());
        for (s, d) in probe_pairs(&t1) {
            if t1.group_of(s) == t1.group_of(d) {
                continue;
            }
            // MIN enumeration is per-cable: each lag sibling contributes a
            // candidate (the paper's gateway diversity grows by the lag
            // factor)...
            assert_eq!(
                min_paths(&t2, s, d).len(),
                2 * min_paths(&t1, s, d).len(),
                "{spec}: {s}->{d}"
            );
            // ...while `all_vlb_paths` deduplicates by switch sequence, so
            // the *distinct* VLB set is lag-invariant (siblings traverse
            // the same switches).
            assert_eq!(
                all_vlb_paths(&t2, s, d),
                all_vlb_paths(&t1, s, d),
                "{spec}: {s}->{d}"
            );
        }
    }
}

#[test]
fn tables_build_and_reach_every_pair_on_every_zoo_shape() {
    for spec in ArrangementSpec::zoo(0x2007) {
        for lag in [1u32, 2] {
            let t = shape(&spec, lag);
            let table = PathTable::build_all(&t);
            for s in 0..t.num_switches() as u32 {
                for d in 0..t.num_switches() as u32 {
                    if s == d {
                        continue;
                    }
                    let pp = table.pair(SwitchId(s), SwitchId(d));
                    assert!(!pp.min.is_empty(), "{spec} lag{lag}: no MIN for {s}->{d}");
                    assert!(!pp.vlb.is_empty(), "{spec} lag{lag}: no VLB for {s}->{d}");
                }
            }
        }
    }
}

#[test]
fn killing_one_lag_sibling_leaves_its_partner_min_path_alive() {
    let t = shape(&ArrangementSpec::Palmtree, 2);
    // First global cable out of switch 0: its (u, v) names a lag-sibling
    // pair (lag 2 → exactly two parallel cables between switch 0 and v).
    let (_, v) = t.global_out(SwitchId(0))[0];
    let u = SwitchId(0);
    let (s, d) = (SwitchId(1), SwitchId(v.0 / t.params().a * t.params().a));
    let mins = min_paths(&t, s, d);

    // One dead sibling: per-cable enumeration drops exactly that cable's
    // candidate, but every switch sequence still carries traffic over the
    // surviving sibling, so `path_alive` keeps all pristine paths.
    let mut one = FaultSet::empty();
    one.fail_global_sibling(u, v, 0);
    let deg = t.degrade(&one);
    assert_eq!(min_paths_degraded(&t, &deg, s, d).len(), mins.len() - 1);
    assert!(mins.iter().all(|p| path_alive(&t, &deg, p)));

    // Both siblings dead: the u→v hop is gone for good, so the two
    // candidates through it die at both the enumeration and the
    // switch-sequence level.
    let mut both = FaultSet::empty();
    both.fail_global_sibling(u, v, 0);
    both.fail_global_sibling(u, v, 1);
    let deg = t.degrade(&both);
    assert_eq!(min_paths_degraded(&t, &deg, s, d).len(), mins.len() - 2);
    let alive = mins.iter().filter(|p| path_alive(&t, &deg, p)).count();
    assert_eq!(alive, mins.len() - 2);
}
