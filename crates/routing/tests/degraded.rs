//! Differential tests of fault-aware path enumeration and table
//! degradation.
//!
//! The pinned contracts:
//!
//! * an **empty** fault set changes nothing — degraded construction and
//!   in-place degradation reproduce the pristine tables byte-for-byte;
//! * degraded enumeration equals the alive-filter of pristine enumeration
//!   *in the same order* (surviving paths are regenerated at the same
//!   surviving generation points);
//! * in-place [`PathTable::degrade`] of an all-paths table equals building
//!   the table from the degraded view directly;
//! * after degradation every remaining path is alive, and a custom-subset
//!   pair whose candidates all died is regenerated from the surviving
//!   candidate pool instead of losing adaptivity.

use tugal_routing::{
    all_vlb_paths, all_vlb_paths_degraded, min_paths, min_paths_degraded, path_alive, PathTable,
    VlbRule,
};
use tugal_topology::{Dragonfly, DragonflyParams, FaultSet, SwitchId};

fn topo() -> Dragonfly {
    Dragonfly::new(DragonflyParams::new(2, 4, 2, 5)).unwrap()
}

/// Byte-level table fingerprint (the `Debug` form covers every field).
fn bytes(t: &PathTable) -> String {
    format!("{t:?}")
}

const RULES: [VlbRule; 3] = [
    VlbRule::All,
    VlbRule::ClassLimit {
        max_hops: 4,
        frac_next: 0.6,
    },
    VlbRule::Strategic { first_seg: 2 },
];

#[test]
fn empty_faults_build_byte_identical_tables() {
    let t = topo();
    let deg = t.degrade(&FaultSet::empty());
    assert_eq!(
        bytes(&PathTable::build_all(&t)),
        bytes(&PathTable::build_all_degraded(&t, &deg)),
        "all-paths construction must not depend on the (empty) degraded view"
    );
    for rule in RULES {
        assert_eq!(
            bytes(&PathTable::build_with_rule(&t, rule, 0x7065)),
            bytes(&PathTable::build_with_rule_degraded(&t, &deg, rule, 0x7065)),
            "{rule:?}: rule construction must not depend on the (empty) degraded view"
        );
    }
}

#[test]
fn empty_faults_degrade_in_place_to_a_no_op() {
    let t = topo();
    let deg = t.degrade(&FaultSet::empty());
    for rule in RULES {
        let pristine = PathTable::build_with_rule(&t, rule, 0x7065);
        let mut table = pristine.clone();
        let rep = table.degrade(&t, &deg, rule, 0x7065);
        assert_eq!(bytes(&pristine), bytes(&table), "{rule:?}");
        assert_eq!(rep.removed_min, 0);
        assert_eq!(rep.removed_vlb, 0);
        assert_eq!(rep.regenerated_pairs, 0);
        assert_eq!(rep.unreachable_pairs, 0);
    }
}

/// A mixed fault set: sampled global cables plus one dead switch.
fn faults(t: &Dragonfly) -> FaultSet {
    let mut f = FaultSet::sample_global_links(t, 0.10, 0xBEEF);
    f.fail_switch(SwitchId(5));
    f
}

#[test]
fn degraded_enumeration_is_the_alive_filter_of_pristine_in_order() {
    let t = topo();
    let deg = t.degrade(&faults(&t));
    for s in 0..t.num_switches() as u32 {
        for d in 0..t.num_switches() as u32 {
            let (s, d) = (SwitchId(s), SwitchId(d));
            if s == d {
                continue;
            }
            let filter = |paths: Vec<tugal_routing::Path>| -> Vec<tugal_routing::Path> {
                if deg.switch_dead(s) || deg.switch_dead(d) {
                    return Vec::new();
                }
                paths
                    .into_iter()
                    .filter(|p| path_alive(&t, &deg, p))
                    .collect()
            };
            assert_eq!(
                min_paths_degraded(&t, &deg, s, d),
                filter(min_paths(&t, s, d)),
                "MIN {s}->{d}"
            );
            assert_eq!(
                all_vlb_paths_degraded(&t, &deg, s, d),
                filter(all_vlb_paths(&t, s, d)),
                "VLB {s}->{d}"
            );
        }
    }
}

#[test]
fn in_place_degrade_matches_degraded_construction() {
    let t = topo();
    let deg = t.degrade(&faults(&t));
    let mut table = PathTable::build_all(&t);
    let rep = table.degrade(&t, &deg, VlbRule::All, 0);
    assert!(rep.removed_min > 0, "the fault set must bite");
    assert!(rep.removed_vlb > 0);
    assert_eq!(
        bytes(&table),
        bytes(&PathTable::build_all_degraded(&t, &deg)),
        "filtering the pristine table must equal building from the degraded view"
    );
}

#[test]
fn degraded_tables_contain_only_alive_paths() {
    let t = topo();
    let deg = t.degrade(&faults(&t));
    for rule in RULES {
        let mut table = PathTable::build_with_rule(&t, rule, 0x7065);
        let rep = table.degrade(&t, &deg, rule, 0x7065);
        assert_eq!(rep.pairs, t.num_switches() * (t.num_switches() - 1));
        for s in 0..t.num_switches() as u32 {
            for d in 0..t.num_switches() as u32 {
                let (s, d) = (SwitchId(s), SwitchId(d));
                if s == d {
                    continue;
                }
                let pp = table.pair(s, d);
                for p in pp.min.iter().chain(&pp.vlb) {
                    assert!(
                        path_alive(&t, &deg, p),
                        "{rule:?}: dead path survived degrade for {s}->{d}"
                    );
                }
                // Pairs with both endpoints alive stay reachable on this
                // small, lightly-degraded topology.
                if !deg.switch_dead(s) && !deg.switch_dead(d) {
                    assert!(!pp.min.is_empty() || !pp.vlb.is_empty(), "{s}->{d}");
                }
            }
        }
    }
}

#[test]
fn custom_subset_pairs_regenerate_from_survivors() {
    let t = topo();
    // Scan seeds until a fault set kills some pair's entire custom VLB
    // subset while survivors exist — the regeneration path.
    for seed in 0..64u64 {
        for rule in [
            VlbRule::ClassLimit {
                max_hops: 3,
                frac_next: 0.0,
            },
            VlbRule::ClassLimit {
                max_hops: 2,
                frac_next: 0.0,
            },
        ] {
            let faults = FaultSet::sample_global_links(&t, 0.15, seed);
            let deg = t.degrade(&faults);
            let mut table = PathTable::build_with_rule(&t, rule, 0x7065);
            let rep = table.degrade(&t, &deg, rule, 0x7065);
            if rep.regenerated_pairs == 0 {
                continue;
            }
            // Found one: every regenerated pair must hold alive candidates.
            for s in 0..t.num_switches() as u32 {
                for d in 0..t.num_switches() as u32 {
                    let (s, d) = (SwitchId(s), SwitchId(d));
                    if s == d {
                        continue;
                    }
                    let pp = table.pair(s, d);
                    for p in pp.min.iter().chain(&pp.vlb) {
                        assert!(path_alive(&t, &deg, p));
                    }
                }
            }
            assert_eq!(rep.unreachable_pairs, 0, "10% faults cannot partition this");
            return;
        }
    }
    panic!("no seed below 64 triggered T-VLB regeneration — degrade() regression?");
}
