//! Dense-vs-sparse differential pin: the two simplex implementations share
//! no solve-path code, so agreement on a broad input grid is strong
//! evidence both are correct.
//!
//! Two input families:
//!
//! * a seeded random LP grid sweeping variable/constraint counts, matrix
//!   sparsity, relation mix and degenerate zero right-hand sides — the
//!   generator keeps its own copy of every row, so the sparse solution is
//!   additionally checked for primal feasibility against the original
//!   (un-normalized) constraints;
//! * the real path-rate programs of `tugal-model`, one per zoo arrangement
//!   × `global_lag` 1–3, obtained unsolved via
//!   [`tugal_model::modeled_primal_lp`].
//!
//! Objectives must agree within 1e-9 *relative*; outcome classes
//! (optimal / infeasible / unbounded) must agree exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tugal_lp::{LinearProgram, Relation, SolveError, VarId};
use tugal_model::modeled_primal_lp;
use tugal_routing::VlbRule;
use tugal_topology::{ArrangementSpec, Dragonfly, DragonflyParams};
use tugal_traffic::{Shift, TrafficPattern};

/// A generated program plus the generator-side copy of its rows (the
/// builder does not expose constraints back, by design).
struct RandomLp {
    lp: LinearProgram,
    rows: Vec<(Vec<(usize, f64)>, Relation, f64)>,
}

fn random_lp(seed: u64) -> RandomLp {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..=14);
    let m = rng.gen_range(1usize..=12);
    let density = rng.gen_range(0.25f64..0.95);

    let mut lp = LinearProgram::new();
    let vars: Vec<VarId> = (0..n)
        .map(|_| {
            let c = if rng.gen_bool(0.2) {
                0.0
            } else {
                rng.gen_range(-3.0f64..3.0)
            };
            lp.add_var(c)
        })
        .collect();

    let mut rows = Vec::new();
    for _ in 0..m {
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for j in 0..n {
            if rng.gen_bool(density) {
                let a = rng.gen_range(-2.0f64..2.0);
                if a.abs() > 1e-3 {
                    terms.push((j, a));
                }
            }
        }
        if terms.is_empty() {
            terms.push((rng.gen_range(0..n), 1.0));
        }
        let rel = match rng.gen_range(0u32..10) {
            0..=5 => Relation::Le,
            6..=8 => Relation::Ge,
            _ => Relation::Eq,
        };
        // Degenerate zero right-hand sides exercise the ratio-test and
        // phase-1 corner cases; negative ones exercise row normalization.
        let rhs = if rng.gen_bool(0.2) {
            0.0
        } else {
            rng.gen_range(-3.0f64..5.0)
        };
        let lp_terms: Vec<(VarId, f64)> = terms.iter().map(|&(j, a)| (vars[j], a)).collect();
        lp.add_constraint(&lp_terms, rel, rhs);
        rows.push((terms, rel, rhs));
    }
    // Most instances get a box row bounding the whole feasible region, so
    // the grid is dominated by optimal outcomes; the rest stay free to
    // exercise the unbounded path.
    if rng.gen_bool(0.75) {
        let bound = rng.gen_range(1.0f64..10.0);
        let all: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&all, Relation::Le, bound);
        rows.push(((0..n).map(|j| (j, 1.0)).collect(), Relation::Le, bound));
    }
    RandomLp { lp, rows }
}

fn assert_close_rel(dense: f64, sparse: f64, what: &str) {
    let tol = 1e-9 * (1.0 + dense.abs());
    assert!(
        (dense - sparse).abs() <= tol,
        "{what}: dense {dense} vs sparse {sparse}"
    );
}

fn assert_primal_feasible(values: &[f64], rows: &[(Vec<(usize, f64)>, Relation, f64)], seed: u64) {
    for (i, v) in values.iter().enumerate() {
        assert!(*v >= -1e-7, "seed {seed}: x{i} = {v} negative");
    }
    for (r, (terms, rel, rhs)) in rows.iter().enumerate() {
        let lhs: f64 = terms.iter().map(|&(j, a)| a * values[j]).sum();
        let ok = match rel {
            Relation::Le => lhs <= rhs + 1e-7,
            Relation::Ge => lhs >= rhs - 1e-7,
            Relation::Eq => (lhs - rhs).abs() <= 1e-7,
        };
        assert!(ok, "seed {seed}: row {r} violated: {lhs} {rel:?} {rhs}");
    }
}

#[test]
fn random_grid_sparse_agrees_with_dense() {
    let mut optimal = 0usize;
    let mut infeasible = 0usize;
    let mut unbounded = 0usize;
    for seed in 0..250u64 {
        let inst = random_lp(seed);
        let dense = inst.lp.solve();
        let sparse = inst.lp.solve_sparse();
        match (&dense, &sparse) {
            (Ok(d), Ok(s)) => {
                optimal += 1;
                assert_close_rel(d.objective, s.objective, &format!("seed {seed} objective"));
                assert_primal_feasible(s.values(), &inst.rows, seed);
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => infeasible += 1,
            (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => unbounded += 1,
            (d, s) => panic!("seed {seed}: dense {d:?} vs sparse {s:?} disagree"),
        }
    }
    // The grid must actually exercise all three outcome classes, or the
    // generator has drifted and the differential evidence is hollow.
    assert!(optimal >= 60, "only {optimal} optimal instances");
    assert!(infeasible >= 5, "only {infeasible} infeasible instances");
    assert!(unbounded >= 5, "only {unbounded} unbounded instances");
}

#[test]
fn random_grid_duals_agree_on_optimal_instances() {
    for seed in 0..120u64 {
        let inst = random_lp(seed);
        let (Ok(d), Ok(s)) = (inst.lp.solve(), inst.lp.solve_sparse()) else {
            continue;
        };
        // Strong duality holds for each solver independently.  Duals are
        // reported for the *normalized* rows (negative right-hand sides
        // flip the row), so the dual objective prices |rhs|.
        let dual_d: f64 = d
            .duals()
            .iter()
            .zip(&inst.rows)
            .map(|(y, (_, _, rhs))| y * rhs.abs())
            .sum();
        let dual_s: f64 = s
            .duals()
            .iter()
            .zip(&inst.rows)
            .map(|(y, (_, _, rhs))| y * rhs.abs())
            .sum();
        assert_close_rel(d.objective, dual_d, &format!("seed {seed} dense duality"));
        assert_close_rel(s.objective, dual_s, &format!("seed {seed} sparse duality"));
    }
}

#[test]
fn zoo_path_rate_lps_agree_dense_vs_sparse() {
    for spec in ArrangementSpec::zoo(0x2007) {
        for lag in 1..=3u32 {
            let params = DragonflyParams::new(2, 4, 2, 5);
            let topo = Dragonfly::with_shape(params, spec.build().as_ref(), lag)
                .expect("zoo shape builds");
            let demands = Shift::new(&topo, 1, 0).demands().expect("shift demands");
            let lp = modeled_primal_lp(&topo, &demands, VlbRule::All).expect("model LP");
            let dense = lp.solve().expect("dense solves the model LP");
            let sparse = lp.solve_sparse().expect("sparse solves the model LP");
            assert_close_rel(
                dense.objective,
                sparse.objective,
                &format!("{spec:?} lag {lag}"),
            );
        }
    }
}
