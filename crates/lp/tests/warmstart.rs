//! Warm-start equivalence pins: a warm solve must be an *optimization*,
//! never a different answer.
//!
//! Two reuse shapes mirror the production call sites in `tugal-model`:
//!
//! * a **rate sweep** — the same constraint matrix with right-hand sides
//!   moving point to point, each solve warm-started from its predecessor
//!   (the `modeled_throughput_multi` shape);
//! * a **column drop** — variables removed between solves, the carried
//!   basis translated through [`WarmStart::remap`] (the `FaultSet`
//!   superset-chain shape, where dead channels delete path-rate columns).
//!
//! In both cases the warm objective must be **bit-identical** to the cold
//! objective of the same program (the solver canonicalizes its final basis
//! factorization, so equal final bases give equal bits), and the warm
//! pivot counts must be strictly lower over the chain's tail.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tugal_lp::{BasisVar, LinearProgram, Relation, VarId};

/// Deterministic all-`≤` bounded family: coefficients fixed by `seed`,
/// right-hand sides scaled row-wise by `t` so the optimal basis drifts
/// across a sweep.
fn sweep_instance(seed: u64, t: f64) -> LinearProgram {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(4usize..=12);
    let m = rng.gen_range(3usize..=10);
    let mut lp = LinearProgram::new();
    let vars: Vec<VarId> = (0..n)
        .map(|_| lp.add_var(rng.gen_range(0.1f64..3.0)))
        .collect();
    for i in 0..m {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.6) {
                terms.push((v, rng.gen_range(0.05f64..2.0)));
            }
        }
        if terms.is_empty() {
            terms.push((vars[0], 1.0));
        }
        let base = rng.gen_range(1.0f64..8.0);
        // Odd rows move quadratically in t, even rows linearly — the
        // binding set reshuffles along the sweep instead of just scaling.
        let rhs = if i % 2 == 0 { base * t } else { base * t * t };
        lp.add_constraint(&terms, Relation::Le, rhs);
    }
    let all: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(&all, Relation::Le, rng.gen_range(2.0f64..9.0) * t);
    lp
}

#[test]
fn rate_sweep_warm_is_bit_identical_with_fewer_pivots() {
    let points = [1.0, 0.95, 0.9, 0.85, 0.8, 0.75];
    let mut tail_warm = 0usize;
    let mut tail_cold = 0usize;
    let mut hits = 0usize;
    let mut attempts = 0usize;
    for seed in 0..40u64 {
        let mut carried = None;
        for (k, &t) in points.iter().enumerate() {
            let lp = sweep_instance(seed, t);
            let cold = lp.solve_sparse().expect("all-Le positive-rhs is solvable");
            let warm = match &carried {
                Some(ws) => lp.solve_sparse_warm(ws).expect("warm solve"),
                None => lp.solve_sparse().expect("cold head"),
            };
            assert_eq!(
                warm.objective.to_bits(),
                cold.objective.to_bits(),
                "seed {seed} t {t}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            if k > 0 {
                // A carried basis the shrunk rhs made primally infeasible
                // is *rejected* (warm_used = false, full cold solve) — the
                // answer stays identical either way; only the pivot-count
                // benefit requires the basis to survive.
                attempts += 1;
                hits += warm.warm_used as usize;
                tail_warm += warm.pivots;
                tail_cold += cold.pivots;
            }
            carried = Some(warm.warm_start().clone());
        }
    }
    assert!(
        hits * 2 > attempts,
        "warm basis accepted only {hits}/{attempts} times across the sweep"
    );
    assert!(
        tail_warm < tail_cold,
        "warm tails took {tail_warm} pivots vs cold {tail_cold}"
    );
}

#[test]
fn column_drop_remap_is_bit_identical_to_cold() {
    let mut warm_hits = 0usize;
    let mut total = 0usize;
    for seed in 100..140u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(5usize..=12);
        let m = rng.gen_range(3usize..=9);
        let objective: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1f64..3.0)).collect();
        let mut rows: Vec<(Vec<(usize, f64)>, f64)> = Vec::new();
        for _ in 0..m {
            let mut terms = Vec::new();
            for j in 0..n {
                if rng.gen_bool(0.6) {
                    terms.push((j, rng.gen_range(0.05f64..2.0)));
                }
            }
            if terms.is_empty() {
                terms.push((0, 1.0));
            }
            rows.push((terms, rng.gen_range(1.0f64..8.0)));
        }
        rows.push((
            (0..n).map(|j| (j, 1.0)).collect(),
            rng.gen_range(2.0f64..9.0),
        ));

        // `keep(j)` builds the program restricted to columns where
        // `j != dropped`, preserving original column order.
        let build = |dropped: Option<usize>| -> LinearProgram {
            let mut lp = LinearProgram::new();
            let vars: Vec<Option<VarId>> = (0..n)
                .map(|j| (Some(j) != dropped).then(|| lp.add_var(objective[j])))
                .collect();
            for (terms, rhs) in &rows {
                let kept: Vec<(VarId, f64)> = terms
                    .iter()
                    .filter_map(|&(j, a)| vars[j].map(|v| (v, a)))
                    .collect();
                if !kept.is_empty() {
                    lp.add_constraint(&kept, Relation::Le, *rhs);
                }
            }
            lp
        };

        let full = build(None).solve_sparse().expect("full instance solves");
        let dropped = n / 2;
        // Translate the carried basis into the shrunk column space: the
        // dead column vanishes, later columns shift down one.
        let ws = full.warm_start().remap(|bv| match bv {
            BasisVar::Structural(j) if j == dropped => None,
            BasisVar::Structural(j) if j > dropped => Some(BasisVar::Structural(j - 1)),
            other => Some(other),
        });

        let shrunk = build(Some(dropped));
        let cold = shrunk.solve_sparse().expect("shrunk cold");
        let warm = shrunk.solve_sparse_warm(&ws).expect("shrunk warm");
        assert_eq!(
            warm.objective.to_bits(),
            cold.objective.to_bits(),
            "seed {seed}: warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        total += 1;
        warm_hits += warm.warm_used as usize;
    }
    // Basis repair must actually succeed most of the time, or the remap
    // path is silently degrading to cold solves.
    assert!(
        warm_hits * 2 > total,
        "warm basis accepted only {warm_hits}/{total} times"
    );
}

#[test]
fn warm_start_from_identical_program_takes_no_pivots() {
    for seed in 200..220u64 {
        let lp = sweep_instance(seed, 1.0);
        let first = lp.solve_sparse().expect("solvable");
        let again = lp
            .solve_sparse_warm(first.warm_start())
            .expect("warm re-solve");
        assert!(again.warm_used, "seed {seed}: own basis rejected");
        assert_eq!(again.pivots, 0, "seed {seed}: re-solve pivoted");
        assert_eq!(first.objective.to_bits(), again.objective.to_bits());
    }
}
