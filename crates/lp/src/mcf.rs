//! Garg–Könemann maximum concurrent flow approximation.
//!
//! Fleischer's phase variant of the Garg–Könemann multiplicative-weights
//! algorithm, specialized to commodities with explicit candidate path lists
//! (which is exactly the shape of the UGAL throughput model: per
//! source–destination pair, a small set of MIN/VLB path classes).  The
//! returned flow is rescaled to be *exactly* capacity-feasible, so the
//! reported throughput is always a valid lower bound; with parameter `ε`
//! it is a `(1 − O(ε))` approximation of the optimum.
//!
//! The pricing step is *phase-batched* for parallelism: each round prices
//! every still-active commodity's cheapest candidate path against a
//! snapshot of the edge lengths (in parallel, with results collected in
//! commodity order), then applies the augmentations and length updates
//! sequentially in that same order.  The reduction order is therefore
//! deterministic: [`ConcurrentFlow::solve`] is bit-identical at any
//! thread count, and bit-identical to the single-threaded reference
//! [`ConcurrentFlow::solve_sequential`] (the cross-validation suite pins
//! both properties).
//!
//! Role in the solver stack: the exact solvers in this crate are the
//! sparse revised simplex (production) and the dense tableau simplex (the
//! differential oracle); this approximation is the third, algorithm-
//! independent cross-check, and a fast fallback for instances where an
//! `O(paths)`-per-round approximation beats exact pivoting.

/// A candidate path of a commodity, as a list of edge indices.
#[derive(Debug, Clone)]
pub struct FlowPath {
    /// Edge indices into the capacity vector.
    pub edges: Vec<usize>,
}

impl FlowPath {
    /// Builds a path from edge indices.
    pub fn new(edges: Vec<usize>) -> Self {
        Self { edges }
    }
}

struct Commodity {
    demand: f64,
    paths: Vec<FlowPath>,
}

/// Approximate solution of a concurrent-flow instance.
#[derive(Debug, Clone)]
pub struct McfSolution {
    /// Largest `θ` such that `θ · demand` of every commodity is routed
    /// within capacities (after defensive rescaling — always feasible).
    pub throughput: f64,
    /// `path_flows[commodity][path]` — absolute flow per candidate path.
    pub path_flows: Vec<Vec<f64>>,
    /// Shortest-path selections performed.
    pub iterations: usize,
}

/// Maximum concurrent flow over explicit path sets.
pub struct ConcurrentFlow {
    capacities: Vec<f64>,
    commodities: Vec<Commodity>,
}

impl ConcurrentFlow {
    /// Creates an instance over edges with the given capacities (all must be
    /// positive).
    pub fn new(capacities: Vec<f64>) -> Self {
        assert!(
            capacities.iter().all(|&c| c > 0.0),
            "capacities must be positive"
        );
        Self {
            capacities,
            commodities: Vec::new(),
        }
    }

    /// Adds a commodity with a demand and its candidate paths.  Returns the
    /// commodity index.
    ///
    /// # Panics
    /// If `demand <= 0`, no path is given, or a path mentions an unknown
    /// edge.
    pub fn add_commodity(&mut self, demand: f64, paths: Vec<FlowPath>) -> usize {
        assert!(demand > 0.0, "demand must be positive");
        assert!(!paths.is_empty(), "commodity needs at least one path");
        for p in &paths {
            for &e in &p.edges {
                assert!(e < self.capacities.len(), "edge {e} out of range");
            }
        }
        self.commodities.push(Commodity { demand, paths });
        self.commodities.len() - 1
    }

    /// Runs the approximation with accuracy parameter `epsilon`
    /// (`0 < ε < 1`; smaller is more accurate and slower — 0.05 gives
    /// results within a few percent of the simplex on the instances this
    /// repository generates).  Path pricing runs in parallel with a
    /// deterministic reduction order: the result is bit-identical at any
    /// thread count, and to [`ConcurrentFlow::solve_sequential`].
    pub fn solve(&self, epsilon: f64) -> McfSolution {
        self.run(epsilon, true)
    }

    /// Single-threaded reference implementation of [`ConcurrentFlow::solve`]
    /// — same phase-batched algorithm with the parallel pricing step run
    /// inline.  Kept public so the cross-validation suite (and downstream
    /// doubt) can pin `solve` against it bit-for-bit.
    pub fn solve_sequential(&self, epsilon: f64) -> McfSolution {
        self.run(epsilon, false)
    }

    fn run(&self, epsilon: f64, parallel: bool) -> McfSolution {
        use rayon::prelude::*;

        assert!(epsilon > 0.0 && epsilon < 1.0);
        let m = self.capacities.len() as f64;
        let delta = (1.0 + epsilon) * ((1.0 + epsilon) * m).powf(-1.0 / epsilon);
        let mut lengths: Vec<f64> = self.capacities.iter().map(|&c| delta / c).collect();
        let mut path_flows: Vec<Vec<f64>> = self
            .commodities
            .iter()
            .map(|c| vec![0.0; c.paths.len()])
            .collect();
        let mut iterations = 0usize;

        let d_of = |lengths: &[f64], caps: &[f64]| -> f64 {
            lengths.iter().zip(caps).map(|(l, c)| l * c).sum()
        };
        let mut d = d_of(&lengths, &self.capacities);
        while d < 1.0 {
            // One Fleischer phase: route every commodity's full demand.
            // Rounds batch the pricing: all active commodities find their
            // cheapest path against a snapshot of the lengths (in
            // parallel), then the augmentations apply sequentially in
            // commodity order, so the length updates — and therefore the
            // whole run — do not depend on the thread count.
            let mut remaining: Vec<f64> = self.commodities.iter().map(|c| c.demand).collect();
            loop {
                let active: Vec<usize> = remaining
                    .iter()
                    .enumerate()
                    .filter(|&(_, &r)| r > 0.0)
                    .map(|(ci, _)| ci)
                    .collect();
                if active.is_empty() || d >= 1.0 {
                    break;
                }
                let cheapest = |ci: &usize| -> usize {
                    self.commodities[*ci]
                        .paths
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, p.edges.iter().map(|&e| lengths[e]).sum::<f64>()))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .expect("non-empty path set")
                        .0
                };
                let choices: Vec<usize> = if parallel {
                    active.par_iter().map(cheapest).collect()
                } else {
                    active.iter().map(cheapest).collect()
                };
                for (&ci, &pi) in active.iter().zip(&choices) {
                    if d >= 1.0 {
                        break;
                    }
                    iterations += 1;
                    let path = &self.commodities[ci].paths[pi];
                    let bottleneck = path
                        .edges
                        .iter()
                        .map(|&e| self.capacities[e])
                        .fold(f64::INFINITY, f64::min);
                    let f = remaining[ci].min(bottleneck);
                    path_flows[ci][pi] += f;
                    for &e in &path.edges {
                        let old = lengths[e];
                        lengths[e] = old * (1.0 + epsilon * f / self.capacities[e]);
                        d += (lengths[e] - old) * self.capacities[e];
                    }
                    remaining[ci] -= f;
                }
            }
        }

        // Theoretical scaling, then a defensive exact-feasibility rescale.
        let scale = ((1.0 + epsilon) / delta).ln() / (1.0 + epsilon).ln();
        for flows in &mut path_flows {
            for f in flows.iter_mut() {
                *f /= scale;
            }
        }
        let mut loads = vec![0.0; self.capacities.len()];
        for (ci, com) in self.commodities.iter().enumerate() {
            for (pi, p) in com.paths.iter().enumerate() {
                for &e in &p.edges {
                    loads[e] += path_flows[ci][pi];
                }
            }
        }
        let overload = loads
            .iter()
            .zip(&self.capacities)
            .map(|(l, c)| l / c)
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut throughput = f64::INFINITY;
        for (ci, com) in self.commodities.iter().enumerate() {
            let routed: f64 = path_flows[ci].iter().sum();
            throughput = throughput.min(routed / overload / com.demand);
        }
        for flows in &mut path_flows {
            for f in flows.iter_mut() {
                *f /= overload;
            }
        }
        McfSolution {
            throughput: if throughput.is_finite() {
                throughput
            } else {
                0.0
            },
            path_flows,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearProgram, Relation};

    /// Exact concurrent-flow throughput by LP, for cross-validation.
    fn exact(caps: &[f64], commodities: &[(f64, Vec<Vec<usize>>)]) -> f64 {
        let mut lp = LinearProgram::new();
        let theta = lp.add_var(1.0);
        let mut path_vars = Vec::new();
        for (_, paths) in commodities {
            let vars: Vec<_> = paths.iter().map(|_| lp.add_var(0.0)).collect();
            path_vars.push(vars);
        }
        // Demand: sum of path flows >= theta * demand  ->  theta*d - sum <= 0.
        for (ci, (d, _)) in commodities.iter().enumerate() {
            let mut terms = vec![(theta, *d)];
            for &v in &path_vars[ci] {
                terms.push((v, -1.0));
            }
            lp.add_constraint(&terms, Relation::Le, 0.0);
        }
        // Capacities.
        for (e, &c) in caps.iter().enumerate() {
            let mut terms = Vec::new();
            for (ci, (_, paths)) in commodities.iter().enumerate() {
                for (pi, p) in paths.iter().enumerate() {
                    let uses = p.iter().filter(|&&x| x == e).count();
                    if uses > 0 {
                        terms.push((path_vars[ci][pi], uses as f64));
                    }
                }
            }
            if !terms.is_empty() {
                lp.add_constraint(&terms, Relation::Le, c);
            }
        }
        lp.solve().unwrap().objective
    }

    fn approx(caps: &[f64], commodities: &[(f64, Vec<Vec<usize>>)], eps: f64) -> McfSolution {
        let mut cf = ConcurrentFlow::new(caps.to_vec());
        for (d, paths) in commodities {
            cf.add_commodity(*d, paths.iter().map(|p| FlowPath::new(p.clone())).collect());
        }
        cf.solve(eps)
    }

    #[test]
    fn single_commodity_single_path() {
        let caps = vec![2.0];
        let com = vec![(1.0, vec![vec![0]])];
        let sol = approx(&caps, &com, 0.02);
        assert!((sol.throughput - 2.0).abs() < 0.1, "{}", sol.throughput);
    }

    #[test]
    fn parallel_paths_add_capacity() {
        // Two disjoint unit edges -> throughput 2 for demand 1.
        let caps = vec![1.0, 1.0];
        let com = vec![(1.0, vec![vec![0], vec![1]])];
        let sol = approx(&caps, &com, 0.02);
        let ex = exact(&caps, &com);
        assert!((ex - 2.0).abs() < 1e-6);
        assert!(sol.throughput > 0.9 * ex, "{} vs {ex}", sol.throughput);
    }

    #[test]
    fn two_commodities_share_an_edge() {
        // Edge 0 shared; each commodity also has a private edge.
        let caps = vec![1.0, 1.0, 1.0];
        let com = vec![(1.0, vec![vec![0], vec![1]]), (1.0, vec![vec![0], vec![2]])];
        let ex = exact(&caps, &com); // 1.5 each: private 1 + half of shared
        let sol = approx(&caps, &com, 0.02);
        assert!((ex - 1.5).abs() < 1e-6, "{ex}");
        assert!(sol.throughput > 0.9 * ex, "{} vs {ex}", sol.throughput);
    }

    #[test]
    fn longer_paths_consume_more() {
        // One commodity, two paths: short (1 edge) and long (3 edges),
        // all edges capacity 1, long path edges shared with nothing.
        let caps = vec![1.0, 1.0, 1.0, 1.0];
        let com = vec![(1.0, vec![vec![0], vec![1, 2, 3]])];
        let ex = exact(&caps, &com); // 2.0: both paths saturate
        let sol = approx(&caps, &com, 0.02);
        assert!(sol.throughput > 0.9 * ex, "{} vs {ex}", sol.throughput);
    }

    #[test]
    fn solution_is_always_feasible() {
        let caps = vec![1.0, 2.0, 0.5, 1.5];
        let com = vec![
            (1.0, vec![vec![0, 1], vec![2]]),
            (2.0, vec![vec![1, 3], vec![0]]),
        ];
        let sol = approx(&caps, &com, 0.1);
        let mut loads = vec![0.0; caps.len()];
        for (ci, (_, paths)) in com.iter().enumerate() {
            for (pi, p) in paths.iter().enumerate() {
                for &e in p {
                    loads[e] += sol.path_flows[ci][pi];
                }
            }
        }
        for (l, c) in loads.iter().zip(&caps) {
            assert!(*l <= c + 1e-9, "load {l} exceeds cap {c}");
        }
    }

    #[test]
    fn approximation_tracks_exact_on_random_instances() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        for _ in 0..10 {
            let n_edges = 6 + (next() * 6.0) as usize;
            let caps: Vec<f64> = (0..n_edges).map(|_| 0.5 + next()).collect();
            let n_com = 2 + (next() * 3.0) as usize;
            let mut com = Vec::new();
            for _ in 0..n_com {
                let n_paths = 2 + (next() * 3.0) as usize;
                let paths: Vec<Vec<usize>> = (0..n_paths)
                    .map(|_| {
                        let len = 1 + (next() * 3.0) as usize;
                        let mut p: Vec<usize> = (0..len)
                            .map(|_| (next() * n_edges as f64) as usize % n_edges)
                            .collect();
                        p.dedup();
                        p
                    })
                    .collect();
                com.push((0.5 + next(), paths));
            }
            let ex = exact(&caps, &com);
            let sol = approx(&caps, &com, 0.05);
            assert!(
                sol.throughput <= ex + 1e-6,
                "approx {} beats exact {ex}",
                sol.throughput
            );
            assert!(
                sol.throughput >= 0.8 * ex,
                "approx {} too far below exact {ex}",
                sol.throughput
            );
        }
    }

    /// A seeded family of random instances shared by the determinism
    /// tests below.
    fn random_instances() -> Vec<(Vec<f64>, Vec<(f64, Vec<Vec<usize>>)>)> {
        let mut state = 0x5CA1AB1Eu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        (0..8)
            .map(|_| {
                let n_edges = 5 + (next() * 8.0) as usize;
                let caps: Vec<f64> = (0..n_edges).map(|_| 0.5 + next()).collect();
                let n_com = 2 + (next() * 4.0) as usize;
                let com: Vec<(f64, Vec<Vec<usize>>)> = (0..n_com)
                    .map(|_| {
                        let n_paths = 1 + (next() * 4.0) as usize;
                        let paths: Vec<Vec<usize>> = (0..n_paths)
                            .map(|_| {
                                let len = 1 + (next() * 3.0) as usize;
                                let mut p: Vec<usize> = (0..len)
                                    .map(|_| (next() * n_edges as f64) as usize % n_edges)
                                    .collect();
                                p.dedup();
                                p
                            })
                            .collect();
                        (0.5 + next(), paths)
                    })
                    .collect();
                (caps, com)
            })
            .collect()
    }

    /// The parallel solve is bit-identical to the sequential reference at
    /// any thread count: throughput, per-path flows and the iteration
    /// count all match exactly.
    #[test]
    fn parallel_solve_is_bit_identical_to_sequential() {
        for (caps, com) in random_instances() {
            let mut cf = ConcurrentFlow::new(caps.clone());
            for (d, paths) in &com {
                cf.add_commodity(*d, paths.iter().map(|p| FlowPath::new(p.clone())).collect());
            }
            let seq = cf.solve_sequential(0.05);
            for threads in ["1", "2", "3", "8"] {
                std::env::set_var("RAYON_NUM_THREADS", threads);
                let par = cf.solve(0.05);
                assert_eq!(
                    seq.throughput.to_bits(),
                    par.throughput.to_bits(),
                    "throughput diverged at {threads} threads"
                );
                assert_eq!(seq.iterations, par.iterations);
                for (sf, pf) in seq.path_flows.iter().zip(&par.path_flows) {
                    for (a, b) in sf.iter().zip(pf) {
                        assert_eq!(a.to_bits(), b.to_bits(), "path flow diverged");
                    }
                }
            }
            std::env::remove_var("RAYON_NUM_THREADS");
        }
    }

    /// The approximation lands within the documented band of the *sparse*
    /// production simplex (which in turn matches the dense oracle): the
    /// three throughput computations in this crate agree on the same
    /// instances.
    #[test]
    fn approximation_tracks_sparse_simplex() {
        for (caps, com) in random_instances() {
            let mut lp = LinearProgram::new();
            let theta = lp.add_var(1.0);
            let mut path_vars = Vec::new();
            for (_, paths) in &com {
                let vars: Vec<_> = paths.iter().map(|_| lp.add_var(0.0)).collect();
                path_vars.push(vars);
            }
            for (ci, (d, _)) in com.iter().enumerate() {
                let mut terms = vec![(theta, *d)];
                for &v in &path_vars[ci] {
                    terms.push((v, -1.0));
                }
                lp.add_constraint(&terms, Relation::Le, 0.0);
            }
            for (e, &c) in caps.iter().enumerate() {
                let mut terms = Vec::new();
                for (ci, (_, paths)) in com.iter().enumerate() {
                    for (pi, p) in paths.iter().enumerate() {
                        let uses = p.iter().filter(|&&x| x == e).count();
                        if uses > 0 {
                            terms.push((path_vars[ci][pi], uses as f64));
                        }
                    }
                }
                if !terms.is_empty() {
                    lp.add_constraint(&terms, Relation::Le, c);
                }
            }
            let ex = lp.solve_sparse().unwrap().objective;
            let dense = lp.solve().unwrap().objective;
            assert!(
                (ex - dense).abs() <= 1e-9 * (1.0 + dense.abs()),
                "sparse {ex} vs dense {dense}"
            );
            let sol = approx(&caps, &com, 0.05);
            assert!(
                sol.throughput <= ex + 1e-6 && sol.throughput >= 0.8 * ex,
                "approx {} outside band of sparse simplex {ex}",
                sol.throughput
            );
        }
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn rejects_nonpositive_demand() {
        let mut cf = ConcurrentFlow::new(vec![1.0]);
        cf.add_commodity(0.0, vec![FlowPath::new(vec![0])]);
    }

    #[test]
    #[should_panic(expected = "edge 3 out of range")]
    fn rejects_unknown_edge() {
        let mut cf = ConcurrentFlow::new(vec![1.0, 1.0]);
        cf.add_commodity(1.0, vec![FlowPath::new(vec![3])]);
    }
}
