//! Garg–Könemann maximum concurrent flow approximation.
//!
//! Fleischer's phase variant of the Garg–Könemann multiplicative-weights
//! algorithm, specialized to commodities with explicit candidate path lists
//! (which is exactly the shape of the UGAL throughput model: per
//! source–destination pair, a small set of MIN/VLB path classes).  The
//! returned flow is rescaled to be *exactly* capacity-feasible, so the
//! reported throughput is always a valid lower bound; with parameter `ε`
//! it is a `(1 − O(ε))` approximation of the optimum.
//!
//! The dense simplex in this crate is exact but `O(rows × cols)` per pivot;
//! this approximation runs in `O(paths · log)` per phase and scales to
//! instances the tableau cannot.

/// A candidate path of a commodity, as a list of edge indices.
#[derive(Debug, Clone)]
pub struct FlowPath {
    /// Edge indices into the capacity vector.
    pub edges: Vec<usize>,
}

impl FlowPath {
    /// Builds a path from edge indices.
    pub fn new(edges: Vec<usize>) -> Self {
        Self { edges }
    }
}

struct Commodity {
    demand: f64,
    paths: Vec<FlowPath>,
}

/// Approximate solution of a concurrent-flow instance.
#[derive(Debug, Clone)]
pub struct McfSolution {
    /// Largest `θ` such that `θ · demand` of every commodity is routed
    /// within capacities (after defensive rescaling — always feasible).
    pub throughput: f64,
    /// `path_flows[commodity][path]` — absolute flow per candidate path.
    pub path_flows: Vec<Vec<f64>>,
    /// Shortest-path selections performed.
    pub iterations: usize,
}

/// Maximum concurrent flow over explicit path sets.
pub struct ConcurrentFlow {
    capacities: Vec<f64>,
    commodities: Vec<Commodity>,
}

impl ConcurrentFlow {
    /// Creates an instance over edges with the given capacities (all must be
    /// positive).
    pub fn new(capacities: Vec<f64>) -> Self {
        assert!(
            capacities.iter().all(|&c| c > 0.0),
            "capacities must be positive"
        );
        Self {
            capacities,
            commodities: Vec::new(),
        }
    }

    /// Adds a commodity with a demand and its candidate paths.  Returns the
    /// commodity index.
    ///
    /// # Panics
    /// If `demand <= 0`, no path is given, or a path mentions an unknown
    /// edge.
    pub fn add_commodity(&mut self, demand: f64, paths: Vec<FlowPath>) -> usize {
        assert!(demand > 0.0, "demand must be positive");
        assert!(!paths.is_empty(), "commodity needs at least one path");
        for p in &paths {
            for &e in &p.edges {
                assert!(e < self.capacities.len(), "edge {e} out of range");
            }
        }
        self.commodities.push(Commodity { demand, paths });
        self.commodities.len() - 1
    }

    /// Runs the approximation with accuracy parameter `epsilon`
    /// (`0 < ε < 1`; smaller is more accurate and slower — 0.05 gives
    /// results within a few percent of the simplex on the instances this
    /// repository generates).
    pub fn solve(&self, epsilon: f64) -> McfSolution {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let m = self.capacities.len() as f64;
        let delta = (1.0 + epsilon) * ((1.0 + epsilon) * m).powf(-1.0 / epsilon);
        let mut lengths: Vec<f64> = self.capacities.iter().map(|&c| delta / c).collect();
        let mut path_flows: Vec<Vec<f64>> = self
            .commodities
            .iter()
            .map(|c| vec![0.0; c.paths.len()])
            .collect();
        let mut iterations = 0usize;

        let d_of = |lengths: &[f64], caps: &[f64]| -> f64 {
            lengths.iter().zip(caps).map(|(l, c)| l * c).sum()
        };
        let mut d = d_of(&lengths, &self.capacities);
        while d < 1.0 {
            for (ci, com) in self.commodities.iter().enumerate() {
                let mut remaining = com.demand;
                while remaining > 0.0 && d < 1.0 {
                    iterations += 1;
                    // Cheapest candidate path under current lengths.
                    let (pi, _) = com
                        .paths
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, p.edges.iter().map(|&e| lengths[e]).sum::<f64>()))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .expect("non-empty path set");
                    let path = &com.paths[pi];
                    let bottleneck = path
                        .edges
                        .iter()
                        .map(|&e| self.capacities[e])
                        .fold(f64::INFINITY, f64::min);
                    let f = remaining.min(bottleneck);
                    path_flows[ci][pi] += f;
                    for &e in &path.edges {
                        let old = lengths[e];
                        lengths[e] = old * (1.0 + epsilon * f / self.capacities[e]);
                        d += (lengths[e] - old) * self.capacities[e];
                    }
                    remaining -= f;
                }
            }
        }

        // Theoretical scaling, then a defensive exact-feasibility rescale.
        let scale = ((1.0 + epsilon) / delta).ln() / (1.0 + epsilon).ln();
        for flows in &mut path_flows {
            for f in flows.iter_mut() {
                *f /= scale;
            }
        }
        let mut loads = vec![0.0; self.capacities.len()];
        for (ci, com) in self.commodities.iter().enumerate() {
            for (pi, p) in com.paths.iter().enumerate() {
                for &e in &p.edges {
                    loads[e] += path_flows[ci][pi];
                }
            }
        }
        let overload = loads
            .iter()
            .zip(&self.capacities)
            .map(|(l, c)| l / c)
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut throughput = f64::INFINITY;
        for (ci, com) in self.commodities.iter().enumerate() {
            let routed: f64 = path_flows[ci].iter().sum();
            throughput = throughput.min(routed / overload / com.demand);
        }
        for flows in &mut path_flows {
            for f in flows.iter_mut() {
                *f /= overload;
            }
        }
        McfSolution {
            throughput: if throughput.is_finite() {
                throughput
            } else {
                0.0
            },
            path_flows,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearProgram, Relation};

    /// Exact concurrent-flow throughput by LP, for cross-validation.
    fn exact(caps: &[f64], commodities: &[(f64, Vec<Vec<usize>>)]) -> f64 {
        let mut lp = LinearProgram::new();
        let theta = lp.add_var(1.0);
        let mut path_vars = Vec::new();
        for (_, paths) in commodities {
            let vars: Vec<_> = paths.iter().map(|_| lp.add_var(0.0)).collect();
            path_vars.push(vars);
        }
        // Demand: sum of path flows >= theta * demand  ->  theta*d - sum <= 0.
        for (ci, (d, _)) in commodities.iter().enumerate() {
            let mut terms = vec![(theta, *d)];
            for &v in &path_vars[ci] {
                terms.push((v, -1.0));
            }
            lp.add_constraint(&terms, Relation::Le, 0.0);
        }
        // Capacities.
        for (e, &c) in caps.iter().enumerate() {
            let mut terms = Vec::new();
            for (ci, (_, paths)) in commodities.iter().enumerate() {
                for (pi, p) in paths.iter().enumerate() {
                    let uses = p.iter().filter(|&&x| x == e).count();
                    if uses > 0 {
                        terms.push((path_vars[ci][pi], uses as f64));
                    }
                }
            }
            if !terms.is_empty() {
                lp.add_constraint(&terms, Relation::Le, c);
            }
        }
        lp.solve().unwrap().objective
    }

    fn approx(caps: &[f64], commodities: &[(f64, Vec<Vec<usize>>)], eps: f64) -> McfSolution {
        let mut cf = ConcurrentFlow::new(caps.to_vec());
        for (d, paths) in commodities {
            cf.add_commodity(*d, paths.iter().map(|p| FlowPath::new(p.clone())).collect());
        }
        cf.solve(eps)
    }

    #[test]
    fn single_commodity_single_path() {
        let caps = vec![2.0];
        let com = vec![(1.0, vec![vec![0]])];
        let sol = approx(&caps, &com, 0.02);
        assert!((sol.throughput - 2.0).abs() < 0.1, "{}", sol.throughput);
    }

    #[test]
    fn parallel_paths_add_capacity() {
        // Two disjoint unit edges -> throughput 2 for demand 1.
        let caps = vec![1.0, 1.0];
        let com = vec![(1.0, vec![vec![0], vec![1]])];
        let sol = approx(&caps, &com, 0.02);
        let ex = exact(&caps, &com);
        assert!((ex - 2.0).abs() < 1e-6);
        assert!(sol.throughput > 0.9 * ex, "{} vs {ex}", sol.throughput);
    }

    #[test]
    fn two_commodities_share_an_edge() {
        // Edge 0 shared; each commodity also has a private edge.
        let caps = vec![1.0, 1.0, 1.0];
        let com = vec![(1.0, vec![vec![0], vec![1]]), (1.0, vec![vec![0], vec![2]])];
        let ex = exact(&caps, &com); // 1.5 each: private 1 + half of shared
        let sol = approx(&caps, &com, 0.02);
        assert!((ex - 1.5).abs() < 1e-6, "{ex}");
        assert!(sol.throughput > 0.9 * ex, "{} vs {ex}", sol.throughput);
    }

    #[test]
    fn longer_paths_consume_more() {
        // One commodity, two paths: short (1 edge) and long (3 edges),
        // all edges capacity 1, long path edges shared with nothing.
        let caps = vec![1.0, 1.0, 1.0, 1.0];
        let com = vec![(1.0, vec![vec![0], vec![1, 2, 3]])];
        let ex = exact(&caps, &com); // 2.0: both paths saturate
        let sol = approx(&caps, &com, 0.02);
        assert!(sol.throughput > 0.9 * ex, "{} vs {ex}", sol.throughput);
    }

    #[test]
    fn solution_is_always_feasible() {
        let caps = vec![1.0, 2.0, 0.5, 1.5];
        let com = vec![
            (1.0, vec![vec![0, 1], vec![2]]),
            (2.0, vec![vec![1, 3], vec![0]]),
        ];
        let sol = approx(&caps, &com, 0.1);
        let mut loads = vec![0.0; caps.len()];
        for (ci, (_, paths)) in com.iter().enumerate() {
            for (pi, p) in paths.iter().enumerate() {
                for &e in p {
                    loads[e] += sol.path_flows[ci][pi];
                }
            }
        }
        for (l, c) in loads.iter().zip(&caps) {
            assert!(*l <= c + 1e-9, "load {l} exceeds cap {c}");
        }
    }

    #[test]
    fn approximation_tracks_exact_on_random_instances() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        for _ in 0..10 {
            let n_edges = 6 + (next() * 6.0) as usize;
            let caps: Vec<f64> = (0..n_edges).map(|_| 0.5 + next()).collect();
            let n_com = 2 + (next() * 3.0) as usize;
            let mut com = Vec::new();
            for _ in 0..n_com {
                let n_paths = 2 + (next() * 3.0) as usize;
                let paths: Vec<Vec<usize>> = (0..n_paths)
                    .map(|_| {
                        let len = 1 + (next() * 3.0) as usize;
                        let mut p: Vec<usize> = (0..len)
                            .map(|_| (next() * n_edges as f64) as usize % n_edges)
                            .collect();
                        p.dedup();
                        p
                    })
                    .collect();
                com.push((0.5 + next(), paths));
            }
            let ex = exact(&caps, &com);
            let sol = approx(&caps, &com, 0.05);
            assert!(
                sol.throughput <= ex + 1e-6,
                "approx {} beats exact {ex}",
                sol.throughput
            );
            assert!(
                sol.throughput >= 0.8 * ex,
                "approx {} too far below exact {ex}",
                sol.throughput
            );
        }
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn rejects_nonpositive_demand() {
        let mut cf = ConcurrentFlow::new(vec![1.0]);
        cf.add_commodity(0.0, vec![FlowPath::new(vec![0])]);
    }

    #[test]
    #[should_panic(expected = "edge 3 out of range")]
    fn rejects_unknown_edge() {
        let mut cf = ConcurrentFlow::new(vec![1.0, 1.0]);
        cf.add_commodity(1.0, vec![FlowPath::new(vec![3])]);
    }
}
