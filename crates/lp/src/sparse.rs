//! Sparse revised simplex with basis factorization and warm starts.
//!
//! The production solver of this crate.  Instead of carrying a dense
//! tableau (O(rows × cols) memory and per-pivot work, as the oracle in
//! [`crate::simplex`] does), this solver keeps the constraint matrix in
//! compressed-sparse-column form and represents the basis inverse as an LU
//! factorization plus a bounded *eta file* of rank-one pivot updates:
//!
//! * **FTRAN** (`B z = a`) and **BTRAN** (`Bᵀ y = c_B`) solve against the
//!   LU factors and then replay the eta file (forward for FTRAN, reverse
//!   for BTRAN), so a pivot costs O(nnz) instead of O(rows × cols);
//! * the eta file is folded back into a fresh LU factorization every
//!   [`ETA_LIMIT`] pivots (and the basic solution recomputed from the
//!   right-hand side), bounding both drift and per-solve memory;
//! * pricing is Dantzig over nonzeros only, scaled by a static
//!   steepest-edge-lite column norm `γ_j = √(1 + ‖a_j‖²)`, with a
//!   stall-triggered Bland fallback against cycling, like the dense
//!   oracle.
//!
//! **Warm starts.**  Every [`SparseSolution`] exposes its final basis as a
//! [`WarmStart`]: a list of [`BasisVar`]s naming each basic column either
//! as a structural variable ([`BasisVar::Structural`]) or as the unit
//! column of a row ([`BasisVar::Row`]).  A follow-up solve of a
//! *structurally similar* program (same columns with a new right-hand side
//! or objective; or a program with a few columns/rows dropped, as in
//! `FaultSet` superset chains) can pass the handle to
//! [`LinearProgram::solve_sparse_warm`]: the basis is re-factorized
//! against the new matrix, unpivoted rows are repaired with their own
//! slack or artificial column, then the start is nursed back to the
//! optimum in two stages tuned to stay near the carried basis —
//!
//! 1. *objective-aware repair*: infeasibility left by the program change
//!    (carried basics whose B⁻¹b went negative) is driven out by a
//!    composite phase 1 from that basis — a longest-step ratio test over
//!    the total-infeasibility objective, with the entering column chosen
//!    by *real* reduced cost among the competitively-gaining candidates
//!    ([`REPAIR_WINDOW`]), so the repair lands on a near-optimal feasible
//!    vertex instead of a merely feasible one; a dual-style repair and
//!    finally a cold start are the fallbacks;
//! 2. *steered phase 2*: pricing prefers re-admitting carried-basis
//!    columns over fresh ones whenever they are competitively improving
//!    ([`PREF_FACTOR`]), so the walk reconstructs the old neighborhood
//!    instead of wandering.
//!
//! If the basis is singular, or the repair stalls, the solver silently
//! falls back to a cold start, so warm starting never changes feasibility
//! or optimality, only the pivot count.  Callers remapping a basis across
//! programs with different variable/row numbering use
//! [`WarmStart::remap`].
//!
//! **Determinism.**  For a fixed program and a fixed (possibly empty) warm
//! start, the solve is bit-reproducible.  The returned solution is always
//! produced by a *canonical refactorization*: the optimal basis is
//! re-factorized with its columns in ascending order, and the primal
//! values, duals and objective are recomputed from that fresh
//! factorization in ascending column order.  Two solves that reach the
//! same optimal basis therefore return bit-identical objectives even when
//! their pivot paths differ — the property the warm-vs-cold equivalence
//! tests pin.

use crate::simplex::{LinearProgram, Relation, SolveError, VarId};

const EPS: f64 = 1e-9;
const PIVOT_EPS: f64 = 1e-7;
/// Entering threshold of the tie-resolution polish pass: just above the
/// float noise floor of reduced-cost computation, far below [`EPS`], so
/// micro-perturbation tie-breaks (e.g. `tugal-model`'s 1e-7-scale
/// objective jitter) are resolved identically from any starting basis.
const POLISH_EPS: f64 = 1e-12;

/// Warm-start pricing bias: a carried-basis column wins the entering
/// choice when its (scaled) score is at least this fraction of the best
/// score over all columns.  See `Solver::prefer`.
const PREF_FACTOR: f64 = 0.5;
/// Entering window of the warm-start composite repair
/// ([`Solver::repair_feasibility`]): columns whose scaled infeasibility
/// gain is at least this fraction of the best gain compete on *real*
/// reduced cost instead of gain alone, so the repair path tracks the
/// true objective while it restores feasibility.
const REPAIR_WINDOW: f64 = 0.5;
/// Bound-violation slack of the Harris two-pass ratio test in
/// [`Solver::optimize`]: blockers whose exact ratio lies within this much
/// feasibility slack of the tightest one compete on pivot-element size
/// instead of ratio order.  Kept below [`PIVOT_EPS`] so the tolerance the
/// rest of the solver grants to basic values is never exceeded.
const RATIO_DELTA: f64 = 5e-8;
/// Eta-file length that triggers a refactorization.
const ETA_LIMIT: usize = 64;
/// Absolute singularity threshold for LU pivots.
const LU_EPS: f64 = 1e-10;

/// Identity of a basic variable, stable across structurally-similar
/// programs (the currency of [`WarmStart`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BasisVar {
    /// A caller-added variable, by [`VarId`] index.
    Structural(usize),
    /// The unit column attached to a row (slack of a `≤` row, surplus of a
    /// `≥` row, artificial of an `=` row), by constraint index.
    Row(usize),
}

/// The final basis of a solve, reusable to warm-start a structurally
/// similar program.  Obtained from [`SparseSolution::warm_start`].
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    entries: Vec<BasisVar>,
}

impl WarmStart {
    /// Basis members, sorted.
    pub fn entries(&self) -> &[BasisVar] {
        &self.entries
    }

    /// Builds a handle from explicit basis members (sorted, deduplicated).
    pub fn from_entries(mut entries: Vec<BasisVar>) -> Self {
        entries.sort_unstable();
        entries.dedup();
        WarmStart { entries }
    }

    /// Translates the basis into another program's variable/row numbering.
    /// `f` maps each member to its identity in the target program, or
    /// `None` to drop it (e.g. a column deleted by a fault); rows left
    /// uncovered are repaired by the warm-start factorization.
    pub fn remap<F: FnMut(BasisVar) -> Option<BasisVar>>(&self, mut f: F) -> WarmStart {
        WarmStart::from_entries(self.entries.iter().copied().filter_map(&mut f).collect())
    }

    /// True when the handle carries no basis (solving with it is a cold
    /// start).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An optimal solution of the sparse revised simplex.
#[derive(Debug, Clone)]
pub struct SparseSolution {
    /// Optimal objective value (of the maximization).
    pub objective: f64,
    /// Simplex pivots performed (phase 1 + phase 2).
    pub pivots: usize,
    /// LU (re)factorizations performed, including the initial and the
    /// final canonical one.
    pub refactorizations: usize,
    /// Whether the supplied warm start was actually used (a rejected warm
    /// basis falls back to a cold start and reports `false`).
    pub warm_used: bool,
    values: Vec<f64>,
    duals: Vec<f64>,
    basis: WarmStart,
}

impl SparseSolution {
    /// Value of a variable at the optimum.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Values of all variables, indexed by [`VarId`] order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Dual value of each constraint, in insertion order; same sign
    /// convention as [`crate::Solution::duals`].
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// The optimal basis, for warm-starting a follow-up solve.
    pub fn warm_start(&self) -> &WarmStart {
        &self.basis
    }
}

impl LinearProgram {
    /// Solves with the sparse revised simplex (cold start).  Agrees with
    /// the dense oracle [`LinearProgram::solve`] to within LP tolerance;
    /// the differential test suite pins the two against each other.
    pub fn solve_sparse(&self) -> Result<SparseSolution, SolveError> {
        solve(self, None)
    }

    /// Sparse solve warm-started from a prior optimal basis.  Returns the
    /// same optimum as [`LinearProgram::solve_sparse`] (bit-identical when
    /// the optimal basis is unique), usually in far fewer pivots.
    pub fn solve_sparse_warm(&self, warm: &WarmStart) -> Result<SparseSolution, SolveError> {
        solve(self, Some(warm))
    }
}

/// The normalized program `max cᵀx  s.t.  Ax {≤,=,≥} b, x ≥ 0, b ≥ 0` in
/// CSC form, with slack/surplus and artificial unit columns appended after
/// the `n` structural columns.
struct Instance {
    m: usize,
    n: usize,
    /// Total columns: `n` structural, then slacks/surpluses, then
    /// artificials.
    total: usize,
    /// First artificial column.
    art_start: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
    b: Vec<f64>,
    /// Phase-2 objective over all columns (zero beyond the structurals).
    cost: Vec<f64>,
    /// Steepest-edge-lite pricing scale `√(1 + ‖a_j‖²)` per column.
    gamma: Vec<f64>,
    /// Per row: its slack/surplus column, `usize::MAX` if none.
    slack_of_row: Vec<usize>,
    /// Per row: its artificial column, `usize::MAX` if none.
    art_of_row: Vec<usize>,
    /// Per column: the row a unit column belongs to (`usize::MAX` for
    /// structural columns).
    row_of_unit: Vec<usize>,
}

impl Instance {
    fn build(lp: &LinearProgram) -> Instance {
        let m = lp.constraints.len();
        let n = lp.objective.len();

        // Normalize rows exactly like the dense oracle: a negative rhs
        // flips the row's sign and relation.
        let mut rels = Vec::with_capacity(m);
        let mut b = Vec::with_capacity(m);
        let mut col_entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (i, c) in lp.constraints.iter().enumerate() {
            let flip = c.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            let rel = match (flip, c.rel) {
                (false, r) => r,
                (true, Relation::Le) => Relation::Ge,
                (true, Relation::Ge) => Relation::Le,
                (true, Relation::Eq) => Relation::Eq,
            };
            rels.push(rel);
            b.push(sign * c.rhs);
            for &(v, coef) in &c.terms {
                if coef != 0.0 {
                    col_entries[v].push((i, sign * coef));
                }
            }
        }
        // Repeated variables within a row are summed (same contract as the
        // dense oracle's tableau accumulation).
        for col in &mut col_entries {
            col.sort_unstable_by_key(|e| e.0);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(col.len());
            for &(r, v) in col.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == r => last.1 += v,
                    _ => merged.push((r, v)),
                }
            }
            merged.retain(|&(_, v)| v != 0.0);
            *col = merged;
        }

        let mut slack_of_row = vec![usize::MAX; m];
        let mut art_of_row = vec![usize::MAX; m];
        let mut next = n;
        for (i, rel) in rels.iter().enumerate() {
            if matches!(rel, Relation::Le | Relation::Ge) {
                slack_of_row[i] = next;
                next += 1;
            }
        }
        let art_start = next;
        for (i, rel) in rels.iter().enumerate() {
            if matches!(rel, Relation::Ge | Relation::Eq) {
                art_of_row[i] = next;
                next += 1;
            }
        }
        let total = next;

        let mut col_ptr = Vec::with_capacity(total + 1);
        let mut row_idx = Vec::new();
        let mut vals = Vec::new();
        col_ptr.push(0);
        for col in &col_entries {
            for &(r, v) in col {
                row_idx.push(r);
                vals.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        for (i, rel) in rels.iter().enumerate() {
            match rel {
                Relation::Le => {
                    row_idx.push(i);
                    vals.push(1.0);
                    col_ptr.push(row_idx.len());
                }
                Relation::Ge => {
                    row_idx.push(i);
                    vals.push(-1.0);
                    col_ptr.push(row_idx.len());
                }
                Relation::Eq => {}
            }
        }
        for (i, rel) in rels.iter().enumerate() {
            if matches!(rel, Relation::Ge | Relation::Eq) {
                row_idx.push(i);
                vals.push(1.0);
                col_ptr.push(row_idx.len());
            }
        }
        debug_assert_eq!(col_ptr.len(), total + 1);

        let mut row_of_unit = vec![usize::MAX; total];
        for (i, &c) in slack_of_row.iter().enumerate() {
            if c != usize::MAX {
                row_of_unit[c] = i;
            }
        }
        for (i, &c) in art_of_row.iter().enumerate() {
            if c != usize::MAX {
                row_of_unit[c] = i;
            }
        }

        let mut cost = vec![0.0; total];
        cost[..n].copy_from_slice(&lp.objective);
        let mut gamma = vec![1.0; total];
        for (j, g) in gamma.iter_mut().enumerate() {
            let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
            let norm2: f64 = vals[lo..hi].iter().map(|v| v * v).sum();
            *g = (1.0 + norm2).sqrt();
        }

        Instance {
            m,
            n,
            total,
            art_start,
            col_ptr,
            row_idx,
            vals,
            b,
            cost,
            gamma,
            slack_of_row,
            art_of_row,
            row_of_unit,
        }
    }

    fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[lo..hi], &self.vals[lo..hi])
    }
}

/// LU factors of a basis matrix, built column by column with partial
/// pivoting (left-looking Gilbert–Peierls scheme).  Position `k` pivoted
/// on original row `prow[k]`; `lcols[k]` holds the below-diagonal
/// multipliers `(original row, l)`, `ucols[k]` the above-diagonal U
/// entries `(position j < k, u)`, and `udiag[k]` the U diagonal.
struct Lu {
    m: usize,
    prow: Vec<usize>,
    lcols: Vec<Vec<(usize, f64)>>,
    ucols: Vec<Vec<(usize, f64)>>,
    udiag: Vec<f64>,
}

impl Lu {
    /// Solves `B z = rhs`.  `rhs` is in original row space and is consumed
    /// as scratch; the result is in basis *position* space.
    fn ftran(&self, rhs: &mut [f64]) -> Vec<f64> {
        // Replay the recorded row eliminations (apply L⁻¹).
        for (pr, lc) in self.prow.iter().zip(&self.lcols) {
            let v = rhs[*pr];
            if v != 0.0 {
                for &(i, l) in lc {
                    rhs[i] -= v * l;
                }
            }
        }
        // Back-substitute U z = y in position space (column-oriented).
        let mut z = vec![0.0; self.m];
        for (k, &pr) in self.prow.iter().enumerate() {
            z[k] = rhs[pr];
        }
        for k in (0..self.m).rev() {
            let x = z[k] / self.udiag[k];
            z[k] = x;
            if x != 0.0 {
                for &(j, u) in &self.ucols[k] {
                    z[j] -= u * x;
                }
            }
        }
        z
    }

    /// Solves `Bᵀ y = c`.  `c` is in position space and is consumed as
    /// scratch; the result is in original row space.
    fn btran(&self, c: &mut [f64]) -> Vec<f64> {
        // Forward-solve Uᵀ w = c (Uᵀ is lower triangular in position
        // space; row k's off-diagonal entries are exactly ucols[k]).
        for k in 0..self.m {
            let mut s = c[k];
            for &(j, u) in &self.ucols[k] {
                s -= u * c[j];
            }
            c[k] = s / self.udiag[k];
        }
        // Scatter to row space and apply the transposed eliminations in
        // reverse order.
        let mut y = vec![0.0; self.m];
        for (k, &pr) in self.prow.iter().enumerate() {
            y[pr] = c[k];
        }
        for (pr, lc) in self.prow.iter().zip(&self.lcols).rev() {
            let mut s = y[*pr];
            for &(i, l) in lc {
                s -= l * y[i];
            }
            y[*pr] = s;
        }
        y
    }
}

struct Factored {
    lu: Lu,
    basis: Vec<usize>,
}

/// Eliminates `col` against the partial factorization and pivots it on an
/// unpivoted row (largest magnitude, or `prefer` when numerically
/// acceptable).  Returns false — leaving the factorization untouched — if
/// the column is numerically dependent on the columns already accepted.
fn try_col(
    inst: &Instance,
    lu: &mut Lu,
    pivoted: &mut [bool],
    basis: &mut Vec<usize>,
    x: &mut [f64],
    col: usize,
    prefer: Option<usize>,
) -> bool {
    let (rs, vs) = inst.col(col);
    for (&r, &v) in rs.iter().zip(vs) {
        x[r] = v;
    }
    let mut ucol = Vec::new();
    for (j, (&pr, lc)) in lu.prow.iter().zip(&lu.lcols).enumerate() {
        let v = x[pr];
        if v != 0.0 {
            ucol.push((j, v));
            for &(i, l) in lc {
                x[i] -= v * l;
            }
        }
    }
    let mut best = usize::MAX;
    let mut best_abs = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        if !pivoted[i] && xi.abs() > best_abs {
            best_abs = xi.abs();
            best = i;
        }
    }
    let mut r = best;
    if let Some(p) = prefer {
        if !pivoted[p] && x[p].abs() > LU_EPS && x[p].abs() >= 1e-3 * best_abs {
            r = p;
        }
    }
    if r == usize::MAX || x[r].abs() <= LU_EPS {
        for v in x.iter_mut() {
            *v = 0.0;
        }
        return false;
    }
    let piv = x[r];
    let mut lcol = Vec::new();
    for (i, v) in x.iter_mut().enumerate() {
        if i != r && !pivoted[i] && *v != 0.0 {
            lcol.push((i, *v / piv));
        }
        *v = 0.0;
    }
    pivoted[r] = true;
    lu.prow.push(r);
    lu.udiag.push(piv);
    lu.ucols.push(ucol);
    lu.lcols.push(lcol);
    basis.push(col);
    true
}

/// Factorizes the basis given by `candidates` (in order), repairing rank
/// deficiency: dependent candidates are skipped, and every row left
/// unpivoted is filled with its own slack (preferred) or artificial
/// column.  Returns `None` when no nonsingular completion is found.
fn factorize(inst: &Instance, candidates: &[usize]) -> Option<Factored> {
    let m = inst.m;
    let mut lu = Lu {
        m,
        prow: Vec::with_capacity(m),
        lcols: Vec::with_capacity(m),
        ucols: Vec::with_capacity(m),
        udiag: Vec::with_capacity(m),
    };
    let mut pivoted = vec![false; m];
    let mut basis = Vec::with_capacity(m);
    let mut x = vec![0.0; m];
    let mut used = vec![false; inst.total];

    for &c in candidates {
        if basis.len() == m {
            break;
        }
        if !used[c] && try_col(inst, &mut lu, &mut pivoted, &mut basis, &mut x, c, None) {
            used[c] = true;
        }
    }
    if basis.len() < m {
        for r in 0..m {
            if pivoted[r] {
                continue;
            }
            for cand in [inst.slack_of_row[r], inst.art_of_row[r]] {
                if cand != usize::MAX
                    && !used[cand]
                    && try_col(
                        inst,
                        &mut lu,
                        &mut pivoted,
                        &mut basis,
                        &mut x,
                        cand,
                        Some(r),
                    )
                {
                    used[cand] = true;
                    break;
                }
            }
        }
    }
    // A fill column may have pivoted away from its own row; mop up with
    // any remaining unit columns.
    if basis.len() < m {
        for (c, u) in used.iter_mut().enumerate().skip(inst.n) {
            if basis.len() == m {
                break;
            }
            if !*u && try_col(inst, &mut lu, &mut pivoted, &mut basis, &mut x, c, None) {
                *u = true;
            }
        }
    }
    (basis.len() == m).then_some(Factored { lu, basis })
}

/// A rank-one basis update: the entering column's FTRAN image `w` replaced
/// basis slot `slot` (pivot element `w[slot]`; `entries` are the other
/// nonzeros of `w`).
struct Eta {
    slot: usize,
    pivot: f64,
    entries: Vec<(usize, f64)>,
}

struct Solver<'a> {
    inst: &'a Instance,
    lu: Lu,
    etas: Vec<Eta>,
    /// Slot → basic column.
    basis: Vec<usize>,
    /// Column → currently basic?
    in_basis: Vec<bool>,
    /// Slot → basic variable value.
    xb: Vec<f64>,
    pivots: usize,
    refactorizations: usize,
    budget: usize,
    /// Column → preferred entering candidate.  Warm starts seed this with
    /// the carried basis: the new optimum is combinatorially close to it
    /// (a fault step moves a few percent of the basis), but the repair
    /// pivots evict carried members, and unbiased pricing then wanders far
    /// from the old neighborhood before finding its way back.  Preferring
    /// improving carried columns steers phase 2 along the short path.
    /// Empty means no preference (cold solves).
    prefer: Vec<bool>,
}

impl<'a> Solver<'a> {
    fn new(inst: &'a Instance, f: Factored, budget: usize) -> Solver<'a> {
        let mut in_basis = vec![false; inst.total];
        for &c in &f.basis {
            in_basis[c] = true;
        }
        let mut s = Solver {
            inst,
            lu: f.lu,
            etas: Vec::new(),
            basis: f.basis,
            in_basis,
            xb: Vec::new(),
            pivots: 0,
            refactorizations: 1,
            budget,
            prefer: Vec::new(),
        };
        s.xb = s.compute_xb();
        s
    }

    fn compute_xb(&self) -> Vec<f64> {
        let mut rhs = self.inst.b.clone();
        let mut z = self.lu.ftran(&mut rhs);
        self.apply_etas(&mut z);
        z
    }

    fn apply_etas(&self, z: &mut [f64]) {
        for eta in &self.etas {
            let zr = z[eta.slot] / eta.pivot;
            z[eta.slot] = zr;
            if zr != 0.0 {
                for &(i, w) in &eta.entries {
                    z[i] -= w * zr;
                }
            }
        }
    }

    /// FTRAN of column `j`: `w = B⁻¹ a_j` in position space.
    fn ftran_col(&self, j: usize) -> Vec<f64> {
        let mut work = vec![0.0; self.inst.m];
        let (rs, vs) = self.inst.col(j);
        for (&r, &v) in rs.iter().zip(vs) {
            work[r] = v;
        }
        let mut z = self.lu.ftran(&mut work);
        self.apply_etas(&mut z);
        z
    }

    /// BTRAN of a position-space vector: `y = B⁻ᵀ c` in row space.
    fn btran_pos(&self, mut c: Vec<f64>) -> Vec<f64> {
        for eta in self.etas.iter().rev() {
            let mut s = c[eta.slot];
            for &(i, w) in &eta.entries {
                s -= w * c[i];
            }
            c[eta.slot] = s / eta.pivot;
        }
        self.lu.btran(&mut c)
    }

    /// Simplex multipliers `y = B⁻ᵀ c_B` for the given objective.
    fn btran_costs(&self, cost: &[f64]) -> Vec<f64> {
        self.btran_pos(self.basis.iter().map(|&c| cost[c]).collect())
    }

    fn objective_of(&self, cost: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&c, &x)| cost[c] * x)
            .sum()
    }

    fn apply_pivot(&mut self, l: usize, enter: usize, w: &[f64], t: f64) -> Result<(), SolveError> {
        for (x, &wi) in self.xb.iter_mut().zip(w) {
            if wi != 0.0 {
                *x -= t * wi;
            }
        }
        self.xb[l] = t;
        self.in_basis[self.basis[l]] = false;
        self.in_basis[enter] = true;
        self.basis[l] = enter;
        self.etas.push(Eta {
            slot: l,
            pivot: w[l],
            entries: w
                .iter()
                .enumerate()
                .filter(|&(i, &v)| i != l && v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect(),
        });
        self.pivots += 1;
        if self.etas.len() >= ETA_LIMIT {
            self.refactorize()?;
        }
        Ok(())
    }

    fn refactorize(&mut self) -> Result<(), SolveError> {
        let f = factorize(self.inst, &self.basis).ok_or(SolveError::IterationLimit)?;
        // The repair path may have substituted unit columns for
        // numerically dependent basis members.
        if f.basis != self.basis {
            for v in self.in_basis.iter_mut() {
                *v = false;
            }
            for &c in &f.basis {
                self.in_basis[c] = true;
            }
        }
        self.basis = f.basis;
        self.lu = f.lu;
        self.etas.clear();
        self.refactorizations += 1;
        self.xb = self.compute_xb();
        Ok(())
    }

    /// Primal simplex iterations until optimality for `cost`.  Phase 1
    /// allows artificial columns to move; phase 2 prices only real
    /// columns and ejects any still-basic artificial at ratio 0 before a
    /// regular ratio test may grow it.
    fn optimize(&mut self, cost: &[f64], phase1: bool) -> Result<(), SolveError> {
        let allow = if phase1 {
            self.inst.total
        } else {
            self.inst.art_start
        };
        let mut stall = 0usize;
        let mut bland = false;
        let mut last_obj = self.objective_of(cost);
        loop {
            if self.pivots >= self.budget {
                return Err(SolveError::IterationLimit);
            }
            let y = self.btran_costs(cost);
            let mut enter = usize::MAX;
            let mut best_score = EPS;
            let mut enter_pref = usize::MAX;
            let mut best_pref = EPS;
            for (j, &cj) in cost.iter().enumerate().take(allow) {
                if self.in_basis[j] {
                    continue;
                }
                let (rs, vs) = self.inst.col(j);
                let mut d = cj;
                for (&r, &v) in rs.iter().zip(vs) {
                    d -= y[r] * v;
                }
                if bland {
                    if d > EPS {
                        enter = j;
                        break;
                    }
                } else {
                    let score = d / self.inst.gamma[j];
                    if score > best_score {
                        best_score = score;
                        enter = j;
                    }
                    if !self.prefer.is_empty() && self.prefer[j] && score > best_pref {
                        best_pref = score;
                        enter_pref = j;
                    }
                }
            }
            // A competitively-improving carried column outranks the global
            // Dantzig pick: re-admitting the old basis first keeps a warm
            // phase 2 inside the carried neighborhood (see `prefer`).  The
            // factor keeps a barely-improving carried column from starving
            // genuinely profitable work.  Optimality is still certified
            // over *all* columns, so the preference changes the path,
            // never the terminal vertex.
            if enter_pref != usize::MAX && best_pref >= PREF_FACTOR * best_score {
                enter = enter_pref;
            }
            if enter == usize::MAX {
                return Ok(());
            }
            let w = self.ftran_col(enter);
            if !phase1 {
                let mut guard = usize::MAX;
                let mut ga = PIVOT_EPS;
                for (i, &c) in self.basis.iter().enumerate() {
                    if c >= self.inst.art_start && w[i].abs() > ga {
                        ga = w[i].abs();
                        guard = i;
                    }
                }
                if guard != usize::MAX {
                    self.apply_pivot(guard, enter, &w, 0.0)?;
                    continue;
                }
            }
            // Harris-style two-pass ratio test (skipped under Bland, whose
            // termination proof needs the exact lexicographic rule).  Pass
            // one finds the tightest ratio with a small slack on each
            // bound; pass two picks, among blockers inside that relaxed
            // limit, the largest pivot element.  On heavily degenerate
            // bases (a warm start patches near-zero slacks into binding
            // rows) the exact test walks long chains of zero-step pivots
            // on tiny pivot elements; the relaxed window converts most of
            // them into one well-conditioned pivot.  The chosen step is
            // still the blocker's exact ratio, so basics never go negative
            // beyond the existing [`PIVOT_EPS`] tolerance.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            if bland {
                for (i, &wi) in w.iter().enumerate() {
                    if wi > PIVOT_EPS {
                        let ratio = self.xb[i].max(0.0) / wi;
                        let better = ratio < best_ratio - EPS
                            || (ratio < best_ratio + EPS
                                && leave.is_none_or(|l| self.basis[i] < self.basis[l]));
                        if better {
                            best_ratio = ratio;
                            leave = Some(i);
                        }
                    }
                }
            } else {
                let mut limit = f64::INFINITY;
                for (i, &wi) in w.iter().enumerate() {
                    if wi > PIVOT_EPS {
                        let r = (self.xb[i].max(0.0) + RATIO_DELTA) / wi;
                        if r < limit {
                            limit = r;
                        }
                    }
                }
                for (i, &wi) in w.iter().enumerate() {
                    if wi > PIVOT_EPS {
                        let ratio = self.xb[i].max(0.0) / wi;
                        if ratio <= limit {
                            // Inside the window, keep carried-basis columns
                            // basic when a non-carried blocker is available
                            // (warm starts only; `prefer` is empty cold) —
                            // evicting a carried member just to re-admit it
                            // later wastes two pivots.
                            let cand_keep = !self.prefer.is_empty() && self.prefer[self.basis[i]];
                            let better = match leave {
                                None => true,
                                Some(l) => {
                                    let cur_keep =
                                        !self.prefer.is_empty() && self.prefer[self.basis[l]];
                                    if cand_keep != cur_keep {
                                        !cand_keep
                                    } else {
                                        wi > w[l] + EPS
                                            || (wi > w[l] - EPS && self.basis[i] < self.basis[l])
                                    }
                                }
                            };
                            if better {
                                best_ratio = ratio;
                                leave = Some(i);
                            }
                        }
                    }
                }
            }
            let Some(l) = leave else {
                return Err(SolveError::Unbounded);
            };
            self.apply_pivot(l, enter, &w, best_ratio)?;
            let obj = self.objective_of(cost);
            if (obj - last_obj).abs() <= 1e-9 * (1.0 + last_obj.abs()) {
                stall += 1;
                if stall > 2 * (self.inst.m + self.inst.n) + 10 {
                    // Latched: Bland's rule is slow but cannot cycle.
                    bland = true;
                }
            } else {
                if !bland {
                    stall = 0;
                }
                last_obj = obj;
            }
        }
    }

    /// Tie-resolution polish: [`Self::optimize`] stops as soon as no
    /// reduced cost exceeds [`EPS`], which leaves objective differences
    /// *below* that tolerance — e.g. the 1e-7-scale tie-breaking
    /// perturbations `tugal-model` puts on its path-rate columns, whose
    /// pairwise gaps sit well under 1e-9 — unresolved, so two starting
    /// bases can stop at two different near-optimal vertices.  This pass
    /// continues with Bland's rule down to [`POLISH_EPS`], driving every
    /// start to the same micro-resolved vertex.
    ///
    /// Every exit here is benign: the basis is already feasible and
    /// [`EPS`]-optimal, so numerical trouble, a sub-tolerance ray, or the
    /// pivot budget simply ends the polish instead of failing the solve.
    fn polish(&mut self, cost: &[f64]) {
        let cap = 2 * (self.inst.m + self.inst.n) + 50;
        for _ in 0..cap {
            if self.pivots >= self.budget {
                return;
            }
            let y = self.btran_costs(cost);
            let mut enter = usize::MAX;
            for (j, &cj) in cost.iter().enumerate().take(self.inst.art_start) {
                if self.in_basis[j] {
                    continue;
                }
                let (rs, vs) = self.inst.col(j);
                let mut d = cj;
                for (&r, &v) in rs.iter().zip(vs) {
                    d -= y[r] * v;
                }
                if d > POLISH_EPS {
                    enter = j;
                    break;
                }
            }
            if enter == usize::MAX {
                return;
            }
            let w = self.ftran_col(enter);
            // Same artificial guard as phase 2: eject a pinned artificial
            // at ratio 0 before a regular ratio test may grow it.
            let mut guard = usize::MAX;
            let mut ga = PIVOT_EPS;
            for (i, &c) in self.basis.iter().enumerate() {
                if c >= self.inst.art_start && w[i].abs() > ga {
                    ga = w[i].abs();
                    guard = i;
                }
            }
            if guard != usize::MAX {
                if self.apply_pivot(guard, enter, &w, 0.0).is_err() {
                    return;
                }
                continue;
            }
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (i, &wi) in w.iter().enumerate() {
                if wi > PIVOT_EPS {
                    let ratio = self.xb[i].max(0.0) / wi;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_none_or(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            // A ray whose gain sits below the main pricing tolerance is
            // "unbounded" only at a scale the solver's contract ignores.
            let Some(l) = leave else {
                return;
            };
            if self.apply_pivot(l, enter, &w, best_ratio).is_err() {
                return;
            }
        }
    }

    /// Dual-simplex repair from a warm basis: leaving-row-first pivots
    /// that drive the negative basics out while preserving the carried
    /// basis's (approximate) dual feasibility — the property that makes
    /// warm starts cheap.  The carried basis was *optimal* for the
    /// previous program; when only right-hand sides and a minority of
    /// columns changed, its reduced costs stay (near-)nonnegative, the
    /// classic dual ratio test keeps them so, and on reaching primal
    /// feasibility the basis is already (near-)optimal — the following
    /// primal phase 2 only has to fix the columns the program change
    /// actually touched, instead of re-deriving the whole vertex.
    ///
    /// `Ok(false)` means the repair stalled (no eligible entering column,
    /// a positive basic artificial, or the pivot budget): the caller
    /// falls back to the composite primal repair or a cold start; this
    /// path never declares infeasibility itself.
    fn dual_repair(&mut self, cost: &[f64]) -> Result<bool, SolveError> {
        let max_rounds = self.inst.m + self.inst.n + 100;
        for _ in 0..max_rounds {
            // Leaving row: most negative basic (ties to the lowest row).
            let mut leave = usize::MAX;
            let mut worst = -PIVOT_EPS;
            for (i, (&c, &x)) in self.basis.iter().zip(&self.xb).enumerate() {
                if c >= self.inst.art_start && x > PIVOT_EPS {
                    // A positive basic artificial needs the composite
                    // repair's two-sided objective; bail out.
                    return Ok(false);
                }
                if x < worst {
                    worst = x;
                    leave = i;
                }
            }
            if leave == usize::MAX {
                return Ok(true);
            }
            if self.pivots >= self.budget {
                return Ok(false);
            }
            // Row `leave` of B⁻¹A via ρ = B⁻ᵀ e_leave, and the dual ratio
            // test: among columns that can raise x_leave (α < 0), the one
            // whose reduced cost hits zero first keeps every other
            // reduced cost nonnegative.
            let mut e = vec![0.0; self.inst.m];
            e[leave] = 1.0;
            let rho = self.btran_pos(e);
            let y = self.btran_costs(cost);
            let mut enter = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            for (j, &cj) in cost.iter().enumerate().take(self.inst.art_start) {
                if self.in_basis[j] {
                    continue;
                }
                let (rs, vs) = self.inst.col(j);
                let mut alpha = 0.0;
                let mut d = cj;
                for (&r, &v) in rs.iter().zip(vs) {
                    alpha += rho[r] * v;
                    d -= y[r] * v;
                }
                if alpha < -PIVOT_EPS {
                    // Carried bases are only *near* dual feasible (the
                    // program change re-prices its columns); clamping
                    // keeps slightly-negative d from hijacking the test.
                    let ratio = d.max(0.0) / -alpha;
                    // Strict improvement, with one deterministic override:
                    // among (near-)tied ratios — common, since every
                    // clamped column ties at zero — a carried-basis column
                    // (`prefer`) beats an uncarried one.  Repair evictions
                    // then recycle the old basis instead of dragging in
                    // fresh columns, keeping the repaired vertex close to
                    // the carried neighborhood that phase 2 wants.
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && enter != usize::MAX
                            && !self.prefer.is_empty()
                            && self.prefer[j]
                            && !self.prefer[enter]);
                    if better {
                        // Near-tie overrides keep the true minimum so the
                        // tolerance cannot creep across many candidates.
                        best_ratio = best_ratio.min(ratio);
                        enter = j;
                    }
                }
            }
            if enter == usize::MAX {
                return Ok(false);
            }
            let w = self.ftran_col(enter);
            if w[leave].abs() <= PIVOT_EPS {
                return Ok(false);
            }
            let t = self.xb[leave] / w[leave];
            self.apply_pivot(leave, enter, &w, t)?;
        }
        Ok(false)
    }

    /// Composite phase 1 from an arbitrary starting basis (warm starts):
    /// maximizes the negated total primal infeasibility
    /// `Σ_{x_B<0} x_B − Σ_{basic artificial >0} x_B` with a two-sided
    /// ratio test, re-deriving the piecewise-linear objective each pivot.
    /// Returns `true` once the basis is primal feasible; `false` means
    /// fall back to a cold solve — this path never declares the program
    /// infeasible itself, the cold phase 1 stays authoritative for that.
    fn repair_feasibility(&mut self, cost: &[f64]) -> Result<bool, SolveError> {
        let max_rounds = self.inst.m + self.inst.n + 100;
        for _ in 0..max_rounds {
            let mut d = vec![0.0; self.inst.m];
            let mut infeasible = false;
            for (i, (&c, &x)) in self.basis.iter().zip(&self.xb).enumerate() {
                if x < -PIVOT_EPS {
                    d[i] = 1.0;
                    infeasible = true;
                } else if c >= self.inst.art_start && x > PIVOT_EPS {
                    d[i] = -1.0;
                    infeasible = true;
                }
            }
            if !infeasible {
                return Ok(true);
            }
            if self.pivots >= self.budget {
                return Ok(false);
            }
            // Entering, in two passes.  Pass one: moving x_j up changes
            // the infeasibility objective by −yᵀa_j per unit; find the
            // best positive (scaled) gain.  Pass two: among the
            // competitively-gaining columns (within [`REPAIR_WINDOW`] of
            // the best) the *real* reduced cost picks the winner — the
            // carried basis was optimal for the previous program, so a
            // repair that also respects the true objective lands on a
            // near-optimal feasible vertex and leaves phase 2 almost
            // nothing to do, where feasibility-first pivots reach a vertex
            // phase 2 then has to unwind.
            let y = self.btran_pos(d.clone());
            let y_cost = self.btran_costs(cost);
            let mut scores = vec![f64::NEG_INFINITY; self.inst.art_start];
            let mut best = PIVOT_EPS;
            for (j, s) in scores.iter_mut().enumerate() {
                if self.in_basis[j] {
                    continue;
                }
                let (rs, vs) = self.inst.col(j);
                let mut g = 0.0;
                for (&r, &v) in rs.iter().zip(vs) {
                    g -= y[r] * v;
                }
                let score = g / self.inst.gamma[j];
                *s = score;
                if score > best {
                    best = score;
                }
            }
            if best <= PIVOT_EPS {
                return Ok(false);
            }
            let mut enter = usize::MAX;
            let mut best_rc = f64::NEG_INFINITY;
            for (j, &score) in scores.iter().enumerate() {
                if score < REPAIR_WINDOW * best {
                    continue;
                }
                let (rs, vs) = self.inst.col(j);
                let mut rc = cost[j];
                for (&r, &v) in rs.iter().zip(vs) {
                    rc -= y_cost[r] * v;
                }
                let rc = rc / self.inst.gamma[j];
                if enter == usize::MAX || rc > best_rc {
                    best_rc = rc;
                    enter = j;
                }
            }
            if enter == usize::MAX {
                return Ok(false);
            }
            let w = self.ftran_col(enter);
            // Longest-step ratio test (piecewise-linear line search): the
            // total infeasibility s(t) is convex in the step t with a
            // slope kink at every basic's zero crossing.  Walk the sorted
            // crossings, accumulating slope, and stop at the first point
            // where s stops decreasing — one pivot then clears *every*
            // infeasibility passed along the way, instead of blocking at
            // the nearest crossing.
            // s'(0) = Σ d_i·w_i = −gain < 0: guaranteed improving.
            let mut slope: f64 = d.iter().zip(&w).map(|(&di, &wi)| di * wi).sum();
            let mut crossings: Vec<(f64, f64, usize)> = Vec::new();
            for (i, &wi) in w.iter().enumerate() {
                let x = self.xb[i];
                let artificial = self.basis[i] >= self.inst.art_start;
                if x < -PIVOT_EPS {
                    if wi < -PIVOT_EPS {
                        // Infeasible basic reaches 0: its −slope term
                        // drops out (and an artificial must then *stay*
                        // at 0, kinking twice as hard).
                        let dd = if artificial { -2.0 * wi } else { -wi };
                        crossings.push((x / wi, dd, i));
                    }
                } else if artificial && x > PIVOT_EPS {
                    if wi > PIVOT_EPS {
                        crossings.push((x / wi, 2.0 * wi, i));
                    }
                } else if wi > PIVOT_EPS {
                    crossings.push((x.max(0.0) / wi, wi, i));
                } else if artificial && wi < -PIVOT_EPS {
                    // Artificial resting at 0 pushed positive: blocks
                    // immediately.
                    crossings.push((0.0, -wi, i));
                }
            }
            crossings.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
            let mut leave: Option<(usize, f64)> = None;
            for &(t, dd, i) in &crossings {
                leave = Some((i, t));
                slope += dd;
                if slope >= -EPS {
                    break;
                }
            }
            let Some((l, t)) = leave else {
                return Ok(false);
            };
            if w[l].abs() <= PIVOT_EPS {
                return Ok(false);
            }
            self.apply_pivot(l, enter, &w, t)?;
        }
        Ok(false)
    }

    /// Phase 1: drive the artificial variables to zero, then pivot basic
    /// artificials out (or leave them pinned at zero on redundant rows).
    fn phase1(&mut self) -> Result<(), SolveError> {
        if !self.basis.iter().any(|&c| c >= self.inst.art_start) {
            return Ok(());
        }
        let mut cost1 = vec![0.0; self.inst.total];
        for c in cost1.iter_mut().skip(self.inst.art_start) {
            *c = -1.0;
        }
        self.optimize(&cost1, true)?;
        let infeas: f64 = self
            .basis
            .iter()
            .zip(&self.xb)
            .filter(|&(&c, _)| c >= self.inst.art_start)
            .map(|(_, &x)| x.max(0.0))
            .sum();
        if infeas > PIVOT_EPS {
            return Err(SolveError::Infeasible);
        }
        for slot in 0..self.inst.m {
            if self.basis[slot] < self.inst.art_start {
                continue;
            }
            // Row `slot` of B⁻¹A, via ρ = B⁻ᵀ e_slot: any real column with
            // a nonzero entry can replace the artificial at value 0.
            let mut e = vec![0.0; self.inst.m];
            e[slot] = 1.0;
            let rho = self.btran_pos(e);
            for j in 0..self.inst.art_start {
                if self.in_basis[j] {
                    continue;
                }
                let (rs, vs) = self.inst.col(j);
                let dot: f64 = rs.iter().zip(vs).map(|(&r, &v)| rho[r] * v).sum();
                if dot.abs() > PIVOT_EPS {
                    let w = self.ftran_col(j);
                    if w[slot].abs() > 0.5 * PIVOT_EPS {
                        self.apply_pivot(slot, j, &w, 0.0)?;
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Canonical final refactorization: rebuild a basis from the optimal
    /// *support* — the basic columns with value above tolerance, in
    /// ascending order — and let [`factorize`]'s deterministic fill
    /// complete the degenerate rows with unit columns.  Values, duals and
    /// the objective are recomputed from the fresh factors.  The result
    /// therefore depends only on the optimal *vertex*, not on the pivot
    /// path or even on which of the vertex's (degenerate-)alternative
    /// bases the iteration stopped at — the property that makes warm and
    /// cold solves bit-identical.
    fn finalize(mut self, warm_used: bool) -> Result<SparseSolution, SolveError> {
        let inst = self.inst;
        let mut sorted: Vec<usize> = self
            .basis
            .iter()
            .zip(&self.xb)
            .filter(|&(_, &x)| x.abs() > EPS)
            .map(|(&c, _)| c)
            .collect();
        sorted.sort_unstable();
        let f = factorize(inst, &sorted).ok_or(SolveError::IterationLimit)?;
        self.refactorizations += 1;
        let mut rhs = inst.b.clone();
        let xb = f.lu.ftran(&mut rhs);
        let mut values = vec![0.0; inst.n];
        let mut objective = 0.0;
        for (k, &c) in f.basis.iter().enumerate() {
            if c < inst.n {
                values[c] = xb[k];
            }
            objective += inst.cost[c] * xb[k];
        }
        let mut c_pos: Vec<f64> = f.basis.iter().map(|&c| inst.cost[c]).collect();
        let duals = f.lu.btran(&mut c_pos);
        let basis = WarmStart::from_entries(
            f.basis
                .iter()
                .map(|&c| {
                    if c < inst.n {
                        BasisVar::Structural(c)
                    } else {
                        BasisVar::Row(inst.row_of_unit[c])
                    }
                })
                .collect(),
        );
        Ok(SparseSolution {
            objective,
            pivots: self.pivots,
            refactorizations: self.refactorizations,
            warm_used,
            values,
            duals,
            basis,
        })
    }
}

/// Attempts a warm-started solve; `Ok(None)` means the warm basis was
/// rejected (singular or infeasible here) and the caller should start
/// cold.
fn try_warm(
    inst: &Instance,
    ws: &WarmStart,
    budget: usize,
) -> Result<Option<SparseSolution>, SolveError> {
    let mut cands = Vec::with_capacity(inst.m);
    for &e in ws.entries() {
        match e {
            BasisVar::Structural(j) if j < inst.n => cands.push(j),
            BasisVar::Row(r) if r < inst.m => {
                let c = if inst.slack_of_row[r] != usize::MAX {
                    inst.slack_of_row[r]
                } else {
                    inst.art_of_row[r]
                };
                if c != usize::MAX {
                    cands.push(c);
                }
            }
            _ => {}
        }
    }
    let Some(f) = factorize(inst, &cands) else {
        return Ok(None);
    };
    let mut s = Solver::new(inst, f, budget);
    s.prefer = vec![false; inst.total];
    for &c in &cands {
        s.prefer[c] = true;
    }
    // Whatever infeasibility survives the slack patching is driven out by
    // pivoting: the composite primal repair (longest-step phase 1 from
    // this basis) first — it empirically lands closest to the carried
    // neighborhood — then the dual-style repair for the residue, and a
    // failure of both falls back to a cold start.
    let cost = inst.cost.clone();
    match s.repair_feasibility(&cost) {
        Ok(true) => {}
        Ok(false) => match s.dual_repair(&cost) {
            Ok(true) => {}
            // Stuck (possibly genuinely infeasible) or numerical
            // trouble: the cold path decides.
            Ok(false) | Err(_) => return Ok(None),
        },
        Err(_) => return Ok(None),
    }
    match s.optimize(&cost, false) {
        Ok(()) => {
            s.polish(&cost);
            s.finalize(true).map(Some)
        }
        // A feasible warm basis witnessing unboundedness is conclusive.
        Err(SolveError::Unbounded) => Err(SolveError::Unbounded),
        // Numerical trouble: retry cold.
        Err(_) => Ok(None),
    }
}

fn solve(lp: &LinearProgram, warm: Option<&WarmStart>) -> Result<SparseSolution, SolveError> {
    let inst = Instance::build(lp);
    let budget = lp.max_iterations.unwrap_or(50 * (inst.m + inst.n) + 1000);
    if let Some(ws) = warm.filter(|w| !w.is_empty()) {
        if let Some(sol) = try_warm(&inst, ws, budget)? {
            return Ok(sol);
        }
    }
    let cands: Vec<usize> = (0..inst.m)
        .map(|r| {
            if inst.art_of_row[r] != usize::MAX {
                inst.art_of_row[r]
            } else {
                inst.slack_of_row[r]
            }
        })
        .collect();
    let f = factorize(&inst, &cands).ok_or(SolveError::IterationLimit)?;
    let mut s = Solver::new(&inst, f, budget);
    s.phase1()?;
    let cost = inst.cost.clone();
    s.optimize(&cost, false)?;
    s.polish(&cost);
    s.finalize(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{LinearProgram, Relation};

    fn lp(obj: &[f64], rows: &[(&[f64], Relation, f64)]) -> LinearProgram {
        let mut p = LinearProgram::new();
        let vars: Vec<VarId> = obj.iter().map(|&c| p.add_var(c)).collect();
        for (coefs, rel, rhs) in rows {
            let terms: Vec<(VarId, f64)> = vars
                .iter()
                .zip(coefs.iter())
                .map(|(&v, &c)| (v, c))
                .collect();
            p.add_constraint(&terms, *rel, *rhs);
        }
        p
    }

    #[test]
    fn textbook_le() {
        let p = lp(
            &[3.0, 2.0],
            &[
                (&[1.0, 1.0], Relation::Le, 4.0),
                (&[1.0, 0.0], Relation::Le, 2.0),
            ],
        );
        let s = p.solve_sparse().unwrap();
        assert!((s.objective - 10.0).abs() < 1e-9);
        assert!((s.value(VarId(0)) - 2.0).abs() < 1e-9);
        assert!((s.value(VarId(1)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn phase1_ge_and_eq() {
        // max x + y  s.t.  x + y = 3, x ≥ 1, y ≤ 5
        let p = lp(
            &[1.0, 1.0],
            &[
                (&[1.0, 1.0], Relation::Eq, 3.0),
                (&[1.0, 0.0], Relation::Ge, 1.0),
                (&[0.0, 1.0], Relation::Le, 5.0),
            ],
        );
        let s = p.solve_sparse().unwrap();
        assert!((s.objective - 3.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let p = lp(
            &[1.0],
            &[(&[1.0], Relation::Le, 1.0), (&[1.0], Relation::Ge, 2.0)],
        );
        assert_eq!(p.solve_sparse().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let p = lp(&[1.0], &[(&[-1.0], Relation::Le, 1.0)]);
        assert_eq!(p.solve_sparse().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x ≥ 2 written as -x ≤ -2.
        let p = lp(&[-1.0], &[(&[-1.0], Relation::Le, -2.0)]);
        let s = p.solve_sparse().unwrap();
        assert!((s.objective + 2.0).abs() < 1e-9);
        assert!((s.value(VarId(0)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn beale_cycling_instance() {
        // Beale's classic degenerate LP; Bland fallback must terminate.
        let p = lp(
            &[0.75, -150.0, 0.02, -6.0],
            &[
                (&[0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0),
                (&[0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0),
                (&[0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0),
            ],
        );
        let s = p.solve_sparse().unwrap();
        assert!(
            (s.objective - 0.05).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn agrees_with_dense_oracle_on_mixed_relations() {
        let p = lp(
            &[2.0, 3.0, 1.0],
            &[
                (&[1.0, 1.0, 1.0], Relation::Le, 10.0),
                (&[1.0, 0.0, 2.0], Relation::Ge, 2.0),
                (&[0.0, 1.0, -1.0], Relation::Eq, 1.0),
                (&[3.0, 1.0, 0.0], Relation::Le, 15.0),
            ],
        );
        let dense = p.solve().unwrap();
        let sparse = p.solve_sparse().unwrap();
        assert!(
            (dense.objective - sparse.objective).abs() <= 1e-9 * (1.0 + dense.objective.abs()),
            "dense {} vs sparse {}",
            dense.objective,
            sparse.objective
        );
        for (d, s) in dense.duals().iter().zip(sparse.duals()) {
            assert!((d - s).abs() < 1e-6, "dual mismatch {d} vs {s}");
        }
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        let p = lp(
            &[3.0, 2.0],
            &[
                (&[1.0, 1.0], Relation::Le, 4.0),
                (&[1.0, 0.0], Relation::Le, 2.0),
            ],
        );
        let s = p.solve_sparse().unwrap();
        let dual_obj: f64 = s.duals().iter().zip([4.0, 2.0]).map(|(y, b)| y * b).sum();
        assert!((dual_obj - s.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_reaches_same_optimum_with_fewer_pivots() {
        // A chain of programs differing only in one rhs.
        let build = |cap: f64| {
            lp(
                &[3.0, 2.0, 1.0],
                &[
                    (&[1.0, 1.0, 1.0], Relation::Le, cap),
                    (&[1.0, 0.0, 0.0], Relation::Le, 2.0),
                    (&[0.0, 1.0, 2.0], Relation::Le, 3.0),
                ],
            )
        };
        let first = build(4.0).solve_sparse().unwrap();
        let mut warm = first.warm_start().clone();
        for cap in [4.5, 5.0, 5.5] {
            let p = build(cap);
            let cold = p.solve_sparse().unwrap();
            let hot = p.solve_sparse_warm(&warm).unwrap();
            assert_eq!(
                cold.objective.to_bits(),
                hot.objective.to_bits(),
                "warm diverged at cap {cap}"
            );
            assert!(hot.pivots <= cold.pivots, "warm start pivoted more");
            warm = hot.warm_start().clone();
        }
    }

    #[test]
    fn empty_warm_start_is_cold() {
        let p = lp(&[1.0], &[(&[1.0], Relation::Le, 1.0)]);
        let s = p.solve_sparse_warm(&WarmStart::default()).unwrap();
        assert!(!s.warm_used);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn remap_drops_and_translates() {
        let ws = WarmStart::from_entries(vec![
            BasisVar::Structural(0),
            BasisVar::Structural(3),
            BasisVar::Row(1),
        ]);
        let out = ws.remap(|v| match v {
            BasisVar::Structural(3) => None,
            BasisVar::Structural(j) => Some(BasisVar::Structural(j + 1)),
            r => Some(r),
        });
        assert_eq!(out.entries(), &[BasisVar::Structural(1), BasisVar::Row(1)]);
    }
}
