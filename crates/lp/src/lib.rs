//! # From-scratch linear programming
//!
//! The paper's Step-1 coarse-grain estimation solves linear programs with
//! the proprietary IBM CPLEX optimizer.  This crate is the open
//! substitute, organized as a production solver pinned by two independent
//! references:
//!
//! * [`LinearProgram::solve_sparse`] (the `sparse` module) — the
//!   production solver: a sparse revised simplex over a
//!   compressed-sparse-column matrix, with LU basis factorization, a
//!   bounded eta file with periodic refactorization, and
//!   steepest-edge-lite pricing over nonzeros only.  It also supports
//!   [`WarmStart`] handles that reuse the final basis across
//!   structurally-similar solves (rate sweeps, `FaultSet` superset
//!   chains), skipping phase 1 and most pivots while returning the same
//!   optimum.
//! * [`LinearProgram::solve`] (the `simplex` module) — the dense
//!   two-phase tableau simplex, kept as the *differential oracle*: it
//!   shares no solve-path code with the sparse solver, and the test layer
//!   (`tests/differential.rs`) pins the two against each other on seeded
//!   random grids and on the real path-rate programs of `tugal-model`.
//! * [`ConcurrentFlow`] (the `mcf` module) — a Garg–Könemann
//!   multiplicative-weights approximation for maximum concurrent flow,
//!   parallelized over commodities with deterministic (thread-count
//!   independent) results; a third, algorithm-independent check on the
//!   flow LPs this repository generates.
//!
//! Both simplex implementations share the [`LinearProgram`] builder API
//! and the same input normalization (negative right-hand sides flip the
//! row), so every program can be solved by either path.

#![warn(missing_docs)]

mod mcf;
mod simplex;
mod sparse;

pub use mcf::{ConcurrentFlow, FlowPath, McfSolution};
pub use simplex::{LinearProgram, Relation, Solution, SolveError, VarId};
pub use sparse::{BasisVar, SparseSolution, WarmStart};
