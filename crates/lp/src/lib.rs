//! # From-scratch linear programming
//!
//! The paper's Step-1 coarse-grain estimation solves linear programs with
//! the proprietary IBM CPLEX optimizer.  This crate is the open substitute:
//!
//! * [`LinearProgram`] (the `simplex` module) — a dense two-phase primal simplex
//!   solver supporting `≤`, `=`, `≥` constraints and non-negative
//!   variables.  The throughput models this repository builds are
//!   origin-feasible (`≤` rows with non-negative right-hand sides), for
//!   which the solver skips phase 1 entirely.
//! * [`ConcurrentFlow`] (the `mcf` module) — a Garg–Könemann multiplicative-weights approximation for
//!   maximum concurrent flow, used to cross-validate the simplex on the
//!   flow LPs this repository generates and as a fast fallback for very
//!   large instances.
//!
//! The solver is deliberately dense: the UGAL throughput model keeps its
//! instances small (hundreds to a few thousands of rows, see
//! `tugal-model`), and a dense tableau with Dantzig pricing plus Bland
//! anti-cycling is simple to make robust.

#![warn(missing_docs)]

mod mcf;
mod simplex;

pub use mcf::{ConcurrentFlow, FlowPath, McfSolution};
pub use simplex::{LinearProgram, Relation, Solution, SolveError, VarId};
