//! Dense two-phase primal simplex — the crate's *differential oracle*.
//!
//! This solver keeps the full tableau in memory and is O(rows × cols) per
//! pivot, so it only scales to small and medium programs.  Production
//! solves go through the sparse revised simplex in [`crate::sparse`]
//! (`LinearProgram::solve_sparse`); this dense solver is retained as the
//! independent reference implementation that the differential test layer
//! (`tests/differential.rs`) pins the sparse solver against.

use std::fmt;

/// Handle to a decision variable of a [`LinearProgram`].  The wrapped index
/// is the variable's position in [`Solution::values`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub usize);

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// Why the solver gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective can grow without bound.
    Unbounded,
    /// Iteration budget exhausted (numerical trouble; should not happen on
    /// well-scaled inputs).
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "infeasible"),
            SolveError::Unbounded => write!(f, "unbounded"),
            SolveError::IterationLimit => write!(f, "iteration limit reached"),
        }
    }
}

impl std::error::Error for SolveError {}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value (of the maximization).
    pub objective: f64,
    /// Simplex pivots performed.
    pub iterations: usize,
    values: Vec<f64>,
    duals: Vec<f64>,
}

impl Solution {
    /// Value of a variable at the optimum.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Values of all variables, indexed by [`VarId`] order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Dual value (shadow price) of each constraint, in the order the
    /// constraints were added.  For a maximization, the dual of a binding
    /// `≤` capacity row is the marginal objective gain per unit of extra
    /// right-hand side; non-binding rows have dual 0 (complementary
    /// slackness).  Constraints whose right-hand side was negative at
    /// construction were normalized by negation, and their duals are
    /// reported for the *normalized* row.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }
}

pub(crate) struct Constraint {
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) rel: Relation,
    pub(crate) rhs: f64,
}

/// A linear program `maximize cᵀx  s.t.  Ax {≤,=,≥} b,  x ≥ 0`.
///
/// ```
/// use tugal_lp::{LinearProgram, Relation};
///
/// // maximize 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 2
/// let mut lp = LinearProgram::new();
/// let x = lp.add_var(3.0);
/// let y = lp.add_var(2.0);
/// lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
/// lp.add_constraint(&[(x, 1.0)], Relation::Le, 2.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective - 10.0).abs() < 1e-9);
/// assert!((sol.value(x) - 2.0).abs() < 1e-9);
/// ```
#[derive(Default)]
pub struct LinearProgram {
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) max_iterations: Option<usize>,
}

const EPS: f64 = 1e-9;
const PIVOT_EPS: f64 = 1e-7;

impl LinearProgram {
    /// Empty program (maximization).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a non-negative variable with the given objective coefficient.
    pub fn add_var(&mut self, objective: f64) -> VarId {
        self.objective.push(objective);
        VarId(self.objective.len() - 1)
    }

    /// Adds a constraint `Σ terms {≤,=,≥} rhs`.  Repeated variables in
    /// `terms` are summed.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], rel: Relation, rhs: f64) {
        self.constraints.push(Constraint {
            terms: terms.iter().map(|&(v, c)| (v.0, c)).collect(),
            rel,
            rhs,
        });
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Overrides the default pivot budget of `50·(m + n) + 1000`.
    pub fn set_max_iterations(&mut self, limit: usize) {
        self.max_iterations = Some(limit);
    }

    /// Solves the program.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        Tableau::build(self).solve()
    }
}

/// Dense simplex tableau.
///
/// Column layout: `n` structural variables, then one slack/surplus per
/// inequality, then artificials, then the right-hand side.  The last row is
/// the reduced-cost row of the current (phase-dependent) objective.
struct Tableau<'a> {
    lp: &'a LinearProgram,
    m: usize,
    n: usize,
    n_art: usize,
    width: usize, // total columns including rhs
    rows: Vec<f64>,
    obj: Vec<f64>,
    basis: Vec<usize>,
    /// Per constraint, the column whose reduced cost yields its dual (the
    /// row's original slack or artificial unit column).
    dual_col: Vec<usize>,
    art_start: usize,
    iterations: usize,
    budget: usize,
}

impl<'a> Tableau<'a> {
    fn build(lp: &'a LinearProgram) -> Self {
        let m = lp.constraints.len();
        let n = lp.num_vars();
        let mut n_slack = 0;
        let mut n_art = 0;
        for c in &lp.constraints {
            // Normalization below may flip relations, so count after
            // normalization: b < 0 flips Le <-> Ge.
            let rel = if c.rhs < 0.0 {
                match c.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                }
            } else {
                c.rel
            };
            match rel {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Relation::Eq => n_art += 1,
            }
        }
        let art_start = n + n_slack;
        let width = n + n_slack + n_art + 1;
        let mut rows = vec![0.0; m * width];
        let mut basis = vec![usize::MAX; m];
        let mut dual_col = vec![usize::MAX; m];
        let mut slack_idx = n;
        let mut art_idx = art_start;
        for (i, c) in lp.constraints.iter().enumerate() {
            let row = &mut rows[i * width..(i + 1) * width];
            let flip = c.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            for &(v, coef) in &c.terms {
                row[v] += sign * coef;
            }
            row[width - 1] = sign * c.rhs;
            let rel = if flip {
                match c.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                }
            } else {
                c.rel
            };
            match rel {
                Relation::Le => {
                    row[slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    dual_col[i] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    row[slack_idx] = -1.0;
                    slack_idx += 1;
                    row[art_idx] = 1.0;
                    basis[i] = art_idx;
                    // The artificial carries the unit column of the row.
                    dual_col[i] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    row[art_idx] = 1.0;
                    basis[i] = art_idx;
                    dual_col[i] = art_idx;
                    art_idx += 1;
                }
            }
        }
        let budget = lp.max_iterations.unwrap_or(50 * (m + n) + 1000);
        Tableau {
            lp,
            m,
            n,
            n_art,
            width,
            rows,
            obj: vec![0.0; width],
            basis,
            dual_col,
            art_start,
            iterations: 0,
            budget,
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.width..(i + 1) * self.width]
    }

    fn solve(mut self) -> Result<Solution, SolveError> {
        if self.n_art > 0 {
            self.phase1()?;
        }
        self.phase2()?;
        // Extract structural values.
        let mut values = vec![0.0; self.n];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n {
                values[b] = self.row(i)[self.width - 1];
            }
        }
        let objective = values
            .iter()
            .zip(&self.lp.objective)
            .map(|(x, c)| x * c)
            .sum();
        // Duals: for a unit column e_i with zero cost, the priced-out
        // reduced cost is -y_i.
        let duals = self
            .dual_col
            .iter()
            .map(|&j| if j == usize::MAX { 0.0 } else { -self.obj[j] })
            .collect();
        Ok(Solution {
            objective,
            iterations: self.iterations,
            values,
            duals,
        })
    }

    /// Phase 1: minimize the sum of artificials.
    fn phase1(&mut self) -> Result<(), SolveError> {
        // Objective: maximize -(sum of artificials).  Price out the basic
        // artificials: obj row = sum of their constraint rows (negated cost).
        self.obj.iter_mut().for_each(|v| *v = 0.0);
        for j in self.art_start..self.art_start + self.n_art {
            self.obj[j] = -1.0;
        }
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                // obj += row (cancels the -1 on the basic artificial).
                let row_start = i * self.width;
                for j in 0..self.width {
                    self.obj[j] += self.rows[row_start + j];
                }
            }
        }
        self.iterate(true)?;
        // The priced-out rhs equals the current sum of artificials.
        if self.obj[self.width - 1] > 1e-7 {
            return Err(SolveError::Infeasible);
        }
        // Drive remaining basic artificials out of the basis.
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                let row_start = i * self.width;
                let pivot_col =
                    (0..self.art_start).find(|&j| self.rows[row_start + j].abs() > PIVOT_EPS);
                if let Some(j) = pivot_col {
                    self.pivot(i, j);
                } else {
                    // Redundant row: zero it so it can never constrain.
                    for j in 0..self.width {
                        self.rows[row_start + j] = 0.0;
                    }
                }
            }
        }
        Ok(())
    }

    /// Phase 2: maximize the real objective from the current basis.
    fn phase2(&mut self) -> Result<(), SolveError> {
        self.obj.iter_mut().for_each(|v| *v = 0.0);
        self.obj[..self.n].copy_from_slice(&self.lp.objective);
        // Price out the basic variables.
        for i in 0..self.m {
            let b = self.basis[i];
            if b < self.n && self.obj[b].abs() > 0.0 {
                let c = self.obj[b];
                let row_start = i * self.width;
                for j in 0..self.width {
                    self.obj[j] -= c * self.rows[row_start + j];
                }
            }
        }
        self.iterate(false)
    }

    /// Runs simplex pivots until optimality.  `phase1` forbids nothing;
    /// phase 2 forbids artificial columns from entering.
    fn iterate(&mut self, phase1: bool) -> Result<(), SolveError> {
        let col_limit = if phase1 {
            self.width - 1
        } else {
            self.art_start
        };
        let mut stall = 0usize;
        let mut bland = false;
        let mut last_obj = self.obj[self.width - 1];
        loop {
            if self.iterations >= self.budget {
                return Err(SolveError::IterationLimit);
            }
            // Anti-cycling: switch to Bland's rule when the objective has
            // not improved meaningfully for a while, and stay there —
            // un-latching can re-enter the cycle through micro-improvement
            // zigzags.
            if !bland && stall > 2 * (self.m + self.n) {
                bland = true;
            }
            let entering = if bland {
                (0..col_limit).find(|&j| self.obj[j] > EPS)
            } else {
                let mut best = None;
                let mut best_v = EPS;
                for (j, &v) in self.obj[..col_limit].iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = Some(j);
                    }
                }
                best
            };
            let Some(e) = entering else {
                return Ok(()); // optimal
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                let a = self.rows[i * self.width + e];
                if a > PIVOT_EPS {
                    let ratio = self.rows[i * self.width + self.width - 1] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_none_or(|l| {
                                if bland {
                                    self.basis[i] < self.basis[l]
                                } else {
                                    a > self.rows[l * self.width + e]
                                }
                            }));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(l) = leave else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(l, e);
            self.iterations += 1;
            let cur = self.obj[self.width - 1];
            // "Meaningful" improvement is measured on a relative scale so
            // micro-zigzags (degenerate chains under rhs perturbation) do
            // not mask a cycle.
            if (cur - last_obj).abs() <= 1e-7 * (1.0 + last_obj.abs()) {
                stall += 1;
            } else {
                if !bland {
                    stall = 0;
                }
                last_obj = cur;
            }
        }
    }

    /// Gauss-Jordan pivot on (row `l`, column `e`).
    fn pivot(&mut self, l: usize, e: usize) {
        let w = self.width;
        let pivot = self.rows[l * w + e];
        debug_assert!(pivot.abs() > PIVOT_EPS * 0.1);
        let inv = 1.0 / pivot;
        for j in 0..w {
            self.rows[l * w + j] *= inv;
        }
        // Other rows.
        for i in 0..self.m {
            if i == l {
                continue;
            }
            let f = self.rows[i * w + e];
            if f.abs() > 0.0 {
                let (head, tail) = self.rows.split_at_mut(l.max(i) * w);
                let (src, dst) = if l < i {
                    (&head[l * w..l * w + w], &mut tail[..w])
                } else {
                    (&tail[..w], &mut head[i * w..i * w + w])
                };
                for j in 0..w {
                    dst[j] -= f * src[j];
                }
            }
        }
        let f = self.obj[e];
        if f.abs() > 0.0 {
            for j in 0..w {
                self.obj[j] -= f * self.rows[l * w + j];
            }
        }
        self.basis[l] = e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // maximize 3x + 5y; x <= 4; 2y <= 12; 3x + 2y <= 18 -> (2, 6), 36.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(3.0);
        let y = lp.add_var(5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // maximize x + y; x + y = 3; x - y <= 1 -> objective 3.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 3.0);
        assert_close(s.value(x) + s.value(y), 3.0);
    }

    #[test]
    fn ge_constraints() {
        // minimize 2x + 3y (maximize -2x -3y); x + y >= 4; x >= 1
        // -> x = 4, y = 0? cost 8; or x=1,y=3 cost 11. Optimum x=4.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-2.0);
        let y = lp.add_var(-3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -8.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(0.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y <= -1 with b < 0 flips to y - x >= 1.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(-1.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, -1.0);
        lp.add_constraint(&[(y, 1.0)], Relation::Le, 5.0);
        let s = lp.solve().unwrap();
        // y >= x + 1, y <= 5 -> max x - y at x = 4, y = 5 -> -1.
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classic example that cycles under naive Dantzig pricing;
        // optimum 0.05 at x1 = 1/25, x3 = 1.
        let mut lp = LinearProgram::new();
        let x1 = lp.add_var(0.75);
        let x2 = lp.add_var(-150.0);
        let x3 = lp.add_var(0.02);
        let x4 = lp.add_var(-6.0);
        lp.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(&[(x, 0.5), (x, 0.5)], Relation::Le, 3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn zero_constraint_program() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.value(x), 0.0);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 2 twice; maximize x.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(0.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn iteration_limit_reported() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        lp.set_max_iterations(0);
        assert_eq!(lp.solve().unwrap_err(), SolveError::IterationLimit);
    }

    #[test]
    fn moderate_random_feasibility_and_optimality() {
        // Pseudo-random origin-feasible programs: check feasibility of the
        // reported optimum and local optimality versus random feasible
        // points.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        for _case in 0..20 {
            let n = 5 + (next() * 5.0) as usize;
            let m = 5 + (next() * 10.0) as usize;
            let mut lp = LinearProgram::new();
            let vars: Vec<VarId> = (0..n).map(|_| lp.add_var(next())).collect();
            let mut rows = Vec::new();
            for _ in 0..m {
                let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, next())).collect();
                let rhs = 1.0 + next();
                lp.add_constraint(&terms, Relation::Le, rhs);
                rows.push((terms, rhs));
            }
            let s = lp.solve().unwrap();
            // Feasibility.
            for (terms, rhs) in &rows {
                let lhs: f64 = terms.iter().map(|&(v, c)| c * s.value(v)).sum();
                assert!(lhs <= rhs + 1e-6, "constraint violated: {lhs} > {rhs}");
            }
            for v in &vars {
                assert!(s.value(*v) >= -1e-9);
            }
            // No random feasible point beats the optimum.
            for _ in 0..200 {
                let candidate: Vec<f64> = (0..n).map(|_| next() * 0.3).collect();
                let feasible = rows.iter().all(|(terms, rhs)| {
                    terms.iter().map(|&(v, c)| c * candidate[v.0]).sum::<f64>() <= *rhs
                });
                if feasible {
                    let obj: f64 = candidate
                        .iter()
                        .enumerate()
                        .map(|(i, x)| x * lp.objective[i])
                        .sum();
                    assert!(obj <= s.objective + 1e-6);
                }
            }
        }
    }
}

#[cfg(test)]
mod dual_tests {
    use super::*;

    #[test]
    fn duals_satisfy_strong_duality() {
        // maximize 3x + 5y; x <= 4; 2y <= 12; 3x + 2y <= 18.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(3.0);
        let y = lp.add_var(5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = lp.solve().unwrap();
        let duals = s.duals();
        assert_eq!(duals.len(), 3);
        // Strong duality: b^T y == c^T x.
        let dual_obj = 4.0 * duals[0] + 12.0 * duals[1] + 18.0 * duals[2];
        assert!(
            (dual_obj - s.objective).abs() < 1e-6,
            "{dual_obj} vs {}",
            s.objective
        );
        // Complementary slackness: x < 4 is slack at the optimum (2, 6),
        // so its dual is zero; the other two rows bind.
        assert!(duals[0].abs() < 1e-9, "{duals:?}");
        assert!(duals[1] > 0.0 && duals[2] > 0.0, "{duals:?}");
        // Dual feasibility: A^T y >= c.
        assert!(duals[0] + 3.0 * duals[2] >= 3.0 - 1e-9);
        assert!(2.0 * duals[1] + 2.0 * duals[2] >= 5.0 - 1e-9);
    }

    #[test]
    fn duals_of_equality_rows() {
        // maximize x + y; x + y = 3; x <= 2.  Optimum 3 along the segment;
        // the equality's dual prices the objective 1:1.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 2.0);
        let s = lp.solve().unwrap();
        let duals = s.duals();
        assert!((duals[0] - 1.0).abs() < 1e-6, "{duals:?}");
        assert!((3.0 * duals[0] + 2.0 * duals[1] - s.objective).abs() < 1e-6);
    }

    #[test]
    fn shadow_price_predicts_rhs_sensitivity() {
        // Increasing a binding capacity by delta should move the optimum
        // by dual * delta (for small delta).
        let build = |cap: f64| {
            let mut lp = LinearProgram::new();
            let x = lp.add_var(2.0);
            let y = lp.add_var(1.0);
            lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, cap);
            lp.add_constraint(&[(x, 1.0)], Relation::Le, 3.0);
            lp
        };
        let base = build(5.0).solve().unwrap();
        let bumped = build(5.5).solve().unwrap();
        let predicted = base.objective + 0.5 * base.duals()[0];
        assert!(
            (bumped.objective - predicted).abs() < 1e-6,
            "{} vs {}",
            bumped.objective,
            predicted
        );
    }
}
