//! Global-link arrangements and their interaction with T-UGAL.
//!
//! The paper wires global links with a variation of the *absolute*
//! arrangement but notes its techniques "do not depend on the link
//! arrangement schemes".  This example exercises that claim: it builds the
//! same `dfly(2,4,2,5)` under the absolute, relative and circulant
//! arrangements, computes T-VLB for each, and simulates an adversarial
//! pattern under conventional UGAL-L and T-UGAL-L.
//!
//! ```sh
//! cargo run --release --example custom_arrangement
//! ```

use std::sync::Arc;
use tugal_suite::netsim::{Config, RoutingAlgorithm, Simulator};
use tugal_suite::topology::{
    AbsoluteArrangement, CirculantArrangement, Dragonfly, DragonflyParams, GlobalArrangement,
    RelativeArrangement,
};
use tugal_suite::traffic::{Shift, TrafficPattern};
use tugal_suite::tugal::{compute_tvlb, conventional_provider, TUgalConfig};

fn main() {
    let params = DragonflyParams::new(2, 4, 2, 5);
    let arrangements: [&dyn GlobalArrangement; 3] = [
        &AbsoluteArrangement,
        &RelativeArrangement,
        &CirculantArrangement,
    ];
    println!("{params}: adversarial shift(1,0) at load 0.25");
    println!(
        "{:>10} {:>22} {:>12} {:>12}",
        "wiring", "chosen T-VLB", "UGAL-L", "T-UGAL-L"
    );
    for arr in arrangements {
        let topo = Arc::new(Dragonfly::with_arrangement(params, arr).unwrap());
        let result = compute_tvlb(topo.clone(), &TUgalConfig::quick());
        let pattern: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&topo, 1, 0));
        let cfg = Config::quick().for_routing(RoutingAlgorithm::UgalL);
        let mut latencies = Vec::new();
        for provider in [conventional_provider(topo.clone(), 300), result.provider] {
            let r = Simulator::new(
                topo.clone(),
                provider,
                pattern.clone(),
                RoutingAlgorithm::UgalL,
                cfg.clone(),
            )
            .run(0.25);
            latencies.push(if r.saturated {
                "SAT".to_string()
            } else {
                format!("{:.1}", r.avg_latency)
            });
        }
        println!(
            "{:>10} {:>22} {:>12} {:>12}",
            arr.name(),
            result.chosen.to_string(),
            latencies[0],
            latencies[1]
        );
    }
}
