//! Capacity planning with the throughput model: how does the number of
//! groups (and hence the global links per group pair) change what the
//! network can sustain under worst-case traffic, and does the topology
//! want a custom VLB set?
//!
//! This is the paper's motivating scenario for system architects: Cascade
//! and Slingshot machines keep the group structure fixed and configure the
//! group count per installation (§3.1).  The LP model answers "what if"
//! questions in seconds, without simulating.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use tugal_suite::model::{modeled_throughput_multi, ModelVariant};
use tugal_suite::routing::VlbRule;
use tugal_suite::topology::{Dragonfly, DragonflyParams};
use tugal_suite::traffic::{Shift, TrafficPattern};

fn main() {
    println!("worst-case (adversarial shift) modeled throughput, p=2 a=4 h=2 switches:");
    println!(
        "{:>12} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "topology", "links", "3-hop", "4-hop", "60% 5-hop", "all VLB"
    );
    let rules = [
        VlbRule::ClassLimit {
            max_hops: 3,
            frac_next: 0.0,
        },
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.0,
        },
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.6,
        },
        VlbRule::All,
    ];
    // All group counts the arrangement supports for a*h = 8 global ports.
    for g in [3u32, 5, 9] {
        let params = DragonflyParams::new(2, 4, 2, g);
        let topo = Dragonfly::new(params).unwrap();
        // Worst adversarial pattern: average over all shift(dg, 0).
        let mut sums = vec![0.0; rules.len()];
        let mut n = 0;
        for dg in 1..g {
            let demands = Shift::new(&topo, dg, 0).demands().unwrap();
            let th =
                modeled_throughput_multi(&topo, &demands, &rules, ModelVariant::DrawProportional)
                    .unwrap();
            for (s, v) in sums.iter_mut().zip(&th) {
                *s += v;
            }
            n += 1;
        }
        print!(
            "{:>12} {:>6}",
            params.to_string(),
            params.links_per_group_pair()
        );
        for s in &sums {
            print!(" {:>12.3}", s / n as f64);
        }
        println!();
    }
    println!();
    println!("reading: with many parallel links (small g) the short-path sets");
    println!("already sit on the throughput plateau, so T-UGAL can drop the");
    println!("long 6-hop paths for free; the maximal topology (g=9, 1 link per");
    println!("pair) needs every VLB path.");
}
