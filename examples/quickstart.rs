//! Quickstart: build a Dragonfly, compute T-VLB with Algorithm 1, and
//! compare T-UGAL-L against conventional UGAL-L on an adversarial pattern.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Runs in well under a minute on a laptop (CI-speed parameters; crank the
//! constants below for paper-scale runs).

use std::sync::Arc;
use tugal_suite::netsim::{Config, RoutingAlgorithm, Simulator};
use tugal_suite::topology::{Dragonfly, DragonflyParams};
use tugal_suite::traffic::{Shift, TrafficPattern};
use tugal_suite::tugal::{compute_tvlb, conventional_provider, TUgalConfig};

fn main() {
    // 1. A small dense Dragonfly: 3 groups, 4 parallel global links between
    //    every pair of groups -- the regime where T-UGAL shines.
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 3)).unwrap());
    println!(
        "topology {}: {} switches, {} nodes, {} links per group pair",
        topo.params(),
        topo.num_switches(),
        topo.num_nodes(),
        topo.links_per_group_pair()
    );

    // 2. Algorithm 1: compute the topology-custom VLB candidate set.
    let result = compute_tvlb(topo.clone(), &TUgalConfig::quick());
    println!(
        "T-VLB chosen: {} (mean VLB hops {:.2} vs {:.2} for all paths)",
        result.chosen, result.report.mean_hops_tvlb, result.report.mean_hops_all
    );

    // 3. Simulate the adversarial shift pattern under both candidate sets.
    //    T-UGAL is *the same router logic* -- only the provider differs.
    let pattern: Arc<dyn TrafficPattern> = Arc::new(Shift::new(&topo, 1, 0));
    let conventional = conventional_provider(topo.clone(), 300);
    let cfg = Config::quick().for_routing(RoutingAlgorithm::UgalL);
    for (name, provider) in [("UGAL-L", conventional), ("T-UGAL-L", result.provider)] {
        let r = Simulator::new(
            topo.clone(),
            provider,
            pattern.clone(),
            RoutingAlgorithm::UgalL,
            cfg.clone(),
        )
        .run(0.2);
        println!(
            "{name:>9} @ load 0.20: avg latency {:6.1} cycles, avg hops {:.2}, \
             {:.0}% of packets on VLB paths{}",
            r.avg_latency,
            r.avg_hops,
            r.vlb_fraction * 100.0,
            if r.saturated { "  [saturated]" } else { "" }
        );
    }
}
