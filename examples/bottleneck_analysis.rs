//! Bottleneck analysis with LP shadow prices: *which* links limit the
//! network under a worst-case pattern, and how does T-VLB change that?
//!
//! The throughput model's binding capacity rows carry dual values — the
//! marginal throughput gain per unit of extra capacity on that link.
//! Architects read this as "where to spend cables".
//!
//! ```sh
//! cargo run --release --example bottleneck_analysis
//! ```

use tugal_suite::model::modeled_bottlenecks;
use tugal_suite::routing::VlbRule;
use tugal_suite::topology::{ChannelKind, Dragonfly, DragonflyParams};
use tugal_suite::traffic::{Shift, TrafficPattern};

fn main() {
    let topo = Dragonfly::new(DragonflyParams::new(2, 4, 2, 9)).unwrap();
    let demands = Shift::new(&topo, 1, 0).demands().unwrap();

    for rule in [
        VlbRule::All,
        VlbRule::ClassLimit {
            max_hops: 4,
            frac_next: 0.5,
        },
    ] {
        let (theta, hot) = modeled_bottlenecks(&topo, &demands, rule).unwrap();
        println!("candidate set: {rule}");
        println!("  modeled worst-case throughput: {theta:.3} packets/cycle/node");
        println!("  binding links (top 5 by shadow price):");
        for (chan, price) in hot.iter().take(5) {
            let ch = topo.channel(*chan);
            let kind = match ch.kind {
                ChannelKind::Global => "global",
                ChannelKind::Local => "local",
                _ => "terminal",
            };
            println!(
                "    {:?} -> {:?}  [{kind}]  dθ/dcap = {price:.4}",
                ch.src, ch.dst
            );
        }
        let globals = hot
            .iter()
            .filter(|(c, _)| topo.channel(*c).kind == ChannelKind::Global)
            .count();
        println!(
            "  {} binding links total, {globals} of them global\n",
            hot.len()
        );
    }
    println!("reading: under an adversarial shift the binding rows are global");
    println!("links; adding cables between the hot group pairs (or, cheaper,");
    println!("letting T-UGAL spread the same traffic over shorter paths)");
    println!("raises the saturation point.");
}
