//! Routing-scheme shoot-out under shifting traffic conditions: MIN, VLB,
//! UGAL-L, UGAL-G and PAR across uniform, adversarial and mixed loads.
//!
//! Reproduces, on a laptop-sized topology, the qualitative landscape of
//! the paper's §2.2: MIN wins on uniform traffic, collapses on adversarial
//! traffic; VLB survives adversarial traffic at the cost of doubling path
//! lengths everywhere; the UGAL family adapts between the two.
//!
//! ```sh
//! cargo run --release --example adversarial_study
//! ```

use std::sync::Arc;
use tugal_suite::netsim::{Config, RoutingAlgorithm, Simulator};
use tugal_suite::topology::{Dragonfly, DragonflyParams};
use tugal_suite::traffic::{Mixed, Shift, TrafficPattern, Uniform};
use tugal_suite::tugal::conventional_provider;

fn main() {
    let topo = Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2, 9)).unwrap());
    let provider = conventional_provider(topo.clone(), 300);

    let patterns: Vec<(&str, Arc<dyn TrafficPattern>)> = vec![
        ("UR", Arc::new(Uniform::new(&topo))),
        ("ADV shift(1,0)", Arc::new(Shift::new(&topo, 1, 0))),
        (
            "MIXED(50,50)",
            Arc::new(Mixed::new(&topo, 50, Shift::new(&topo, 1, 0), 7)),
        ),
    ];
    let routings = [
        RoutingAlgorithm::Min,
        RoutingAlgorithm::Vlb,
        RoutingAlgorithm::UgalL,
        RoutingAlgorithm::UgalG,
        RoutingAlgorithm::Par,
    ];

    let load = 0.20;
    println!("latency (cycles) at offered load {load} -- SAT = saturated:");
    print!("{:>16}", "");
    for r in routings {
        print!(" {:>8}", r.name());
    }
    println!();
    for (name, pattern) in &patterns {
        print!("{name:>16}");
        for routing in routings {
            let cfg = Config::quick().for_routing(routing);
            let r = Simulator::new(
                topo.clone(),
                provider.clone(),
                pattern.clone(),
                routing,
                cfg,
            )
            .run(load);
            if r.saturated {
                print!(" {:>8}", "SAT");
            } else {
                print!(" {:>8.1}", r.avg_latency);
            }
        }
        println!();
    }
    println!();
    println!("MIN saturates on the adversarial shift (all traffic of a group");
    println!("squeezes through one global link); VLB pays double hops on");
    println!("uniform traffic; UGAL adapts to whichever is appropriate.");
}
