//! Vendored minimal stand-in for `proptest`: the `proptest!` macro,
//! composable [`strategy::Strategy`] values, and `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for this workspace:
//! cases are drawn from a deterministic per-test RNG (seeded from the
//! test's module path and name, so runs are reproducible), and failing
//! inputs are reported but **not shrunk**.

#![warn(missing_docs)]

#[doc(hidden)]
pub use rand;

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Number-of-cases configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed test case (carried by `prop_assert!`-style macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut SmallRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone + Debug>(Vec<T>);

    /// Chooses uniformly from `options` (must be non-empty).
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() requires at least one option");
        Select(options)
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// FNV-1a hash used to derive a stable per-test RNG seed (used by the
/// generated test bodies; not part of the public API).
#[doc(hidden)]
pub fn __fnv64(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal test that runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::__fnv64(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng =
                <$crate::rand::rngs::SmallRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\nminimal input not shrunk; inputs were:\n{}",
                        __case + 1,
                        __config.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, carrying
/// the condition text and optional formatted context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.25f64..0.75, i in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
            prop_assert!(i < 4);
        }

        #[test]
        fn composition_works(
            v in (1u32..5, 2u32..6)
                .prop_flat_map(|(a, b)| (Just(a), Just(b), crate::sample::select(vec![a, b])))
                .prop_map(|(a, b, pick)| (a, b, pick)),
            flag in crate::bool::ANY,
        ) {
            let (a, b, pick) = v;
            prop_assert!(pick == a || pick == b);
            prop_assert!(flag || !flag);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = 0u64..1_000_000;
        let mut r1 = rand::rngs::SmallRng::seed_from_u64(7);
        let mut r2 = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
