//! Vendored minimal stand-in for `criterion`: same macro/builder surface,
//! simple wall-clock measurement underneath.
//!
//! Each benchmark is warmed up, then timed over `sample_size` samples whose
//! per-sample iteration count adapts so a sample takes a measurable slice
//! of time.  Mean / min / max nanoseconds per iteration go to stdout.  No
//! statistical analysis, plots, or baselines — numbers from this harness
//! are indicative, not publication-grade.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Target time a single measured sample should take.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);
/// Warm-up budget per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(300);

/// Top-level benchmark driver (builder-style, like upstream).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Per-sample batching hint, mirroring `criterion::BatchSize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap; batch many per sample.
    SmallInput,
    /// Inputs are expensive; run one routine call per batch.
    LargeInput,
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, `iters_per_sample` calls per recorded sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = self.iters_per_sample;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = self.iters_per_sample;
        let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.samples.push(start.elapsed());
    }

    fn last_sample(&self) -> Duration {
        self.samples.last().copied().unwrap_or_default()
    }
}

/// Warm-up + calibration, then `sample_size` timed samples; prints a
/// one-line summary compatible with eyeballing against upstream output.
fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Calibration: grow the per-sample iteration count until one sample
    // takes a measurable amount of time (doubles as warm-up).
    let mut iters = 1u64;
    let warmup_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters_per_sample: iters,
            samples: Vec::new(),
        };
        f(&mut b);
        let took = b.last_sample();
        if took >= TARGET_SAMPLE_TIME || warmup_start.elapsed() >= WARMUP_TIME {
            break;
        }
        // Aim for the target time, growing at most 8x per step.
        let scale =
            (TARGET_SAMPLE_TIME.as_secs_f64() / took.as_secs_f64().max(1e-9)).clamp(2.0, 8.0);
        iters = ((iters as f64) * scale).ceil() as u64;
    }

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }

    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() * 1e9 / iters as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{name:<60} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        b.samples.len(),
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop-add", |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        let mut g = c.benchmark_group("group");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }
}
