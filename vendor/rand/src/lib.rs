//! Vendored minimal stand-in for the `rand` 0.8 API subset this workspace
//! uses: [`rngs::SmallRng`] (xoshiro256++), [`Rng`] with `gen_range` /
//! `gen_bool`, [`SeedableRng`] with SplitMix64-based `seed_from_u64`, and
//! [`seq::SliceRandom`] (Fisher–Yates `shuffle`, `choose`).
//!
//! Deterministic per seed; integer sampling uses Lemire's widening-multiply
//! rejection method.  Streams are not bit-identical to upstream `rand 0.8`
//! (documented in `vendor/README.md`).

#![warn(missing_docs)]

/// A source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from fixed bytes or a `u64`.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Uniform sample of a `u64` in `[0, bound)` by widening multiply with
/// rejection (Lemire's method); unbiased for every `bound > 0`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty sampling range");
    let mut m = (rng.next_u64() as u128) * (bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling methods over any [`RngCore`] (subset of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (exclusive or inclusive integer ranges,
    /// or an exclusive `f64` range).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Threshold compare against p scaled to the full u64 range.
        self.next_u64() < (p * (u64::MAX as f64 + 1.0)) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Pre-seeded generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ (the same
    /// algorithm upstream `rand 0.8` uses for `SmallRng` on 64-bit
    /// platforms).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpointing a stream
        /// mid-sequence. Feeding the returned words back through
        /// [`SmallRng::from_state`] resumes the stream bit-for-bit.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`SmallRng::state`] snapshot.
        /// The all-zero state (unreachable from any seeded stream) is
        /// remapped the same way `from_seed` remaps it, so this never
        /// constructs the degenerate generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return SmallRng {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0x6A09_E667_F3BC_C909,
                        0xBB67_AE85_84CA_A73B,
                        0x3C6E_F372_FE94_F82B,
                    ],
                };
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Subset of `rand::seq::SliceRandom`: in-place shuffle and uniform
    /// element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: usize = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40))
            .count();
        assert!(same < 4, "different seeds produced near-identical streams");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "a bucket was never sampled");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
