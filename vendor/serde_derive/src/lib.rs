//! Vendored minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros for the vendored `serde`.
//!
//! Supports exactly the shapes this workspace derives on: non-generic
//! structs with named fields, tuple structs, and enums whose variants are
//! unit, single-field tuple, or struct variants (serialized with serde's
//! externally-tagged convention).  Hand-rolled token parsing — no `syn` /
//! `quote`, since the build environment cannot fetch them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct TypeDef {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_serialize(&def).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated impl parses")
}

fn parse_type(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("vendored serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("vendored serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (type `{name}`)");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Shape::Struct(Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("vendored serde_derive: malformed enum body: {other:?}"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}`"),
    };
    TypeDef { name, shape }
}

/// Advances `i` past `#[...]` attributes (incl. doc comments) and
/// `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body: `name: Type, ...`.  Commas inside
/// angle brackets belong to the type and are skipped by depth tracking;
/// commas inside `()`/`[]`/`{}` are invisible (those are single groups).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        // Skip to the next top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple body `(Type, Type, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    count - usize::from(trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.fields {
        Fields::Unit => {
            format!("{ty}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),")
        }
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{ty}::{vn}({}) => ::serde::Value::Object(vec![\
                 (::std::string::String::from(\"{vn}\"), {payload})]),",
                binds.join(", ")
            )
        }
        Fields::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{ty}::{vn} {{ {} }} => ::serde::Value::Object(vec![\
                 (::std::string::String::from(\"{vn}\"), \
                 ::serde::Value::Object(vec![{}]))]),",
                fields.join(", "),
                pairs.join(", ")
            )
        }
    }
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::obj_field(v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::Array(items) if items.len() == {n} => \
                     ::std::result::Result::Ok({name}({})), \
                   _ => ::std::result::Result::Err(::serde::Error::msg(\
                        \"expected array for tuple struct {name}\")), \
                 }}",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Shape::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vn = &v.name;
            let build = match &v.fields {
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__payload)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match __payload {{ \
                           ::serde::Value::Array(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vn}({})), \
                           _ => ::std::result::Result::Err(::serde::Error::msg(\
                                \"expected array payload for {name}::{vn}\")), \
                         }}",
                        inits.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::obj_field(__payload, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name}::{vn} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Unit => unreachable!(),
            };
            format!("\"{vn}\" => return {build},")
        })
        .collect();

    let mut body = String::new();
    if !unit_arms.is_empty() {
        body.push_str(&format!(
            "if let ::serde::Value::Str(__s) = v {{ \
               match __s.as_str() {{ {} _ => {{}} }} \
             }}\n",
            unit_arms.join(" ")
        ));
    }
    if !payload_arms.is_empty() {
        body.push_str(&format!(
            "if let ::serde::Value::Object(__fields) = v {{ \
               if __fields.len() == 1 {{ \
                 let (__tag, __payload) = &__fields[0]; \
                 match __tag.as_str() {{ {} _ => {{}} }} \
               }} \
             }}\n",
            payload_arms.join(" ")
        ));
    }
    body.push_str(&format!(
        "::std::result::Result::Err(::serde::Error::msg(\
         \"invalid value for enum {name}\"))"
    ));
    body
}
