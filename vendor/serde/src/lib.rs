//! Vendored minimal stand-in for `serde`: [`Serialize`] / [`Deserialize`]
//! over a JSON-shaped [`Value`] data model, plus derive macros (feature
//! `derive`, re-exported from the vendored `serde_derive`).
//!
//! The data model intentionally covers only what this workspace
//! serializes: primitives, strings, sequences, fixed arrays, tuples,
//! string-keyed maps, and externally-tagged enums.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers).
    Int(i64),
    /// Unsigned integer (non-negative integral JSON numbers).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field of a derived struct (used by generated code).
pub fn obj_field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, Error> {
    v.get(key)
        .ok_or_else(|| Error(format!("missing field `{key}`")))
}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types constructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => {
                        i64::try_from(*u).map_err(|_| Error::msg("integer overflow"))?
                    }
                    _ => return Err(Error::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // `null` round-trips the non-finite floats JSON cannot encode.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Array(items) if items.len() == N => items,
            _ => return Err(Error(format!("expected array of length {N}"))),
        };
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                let items = match v {
                    Value::Array(items) if items.len() == LEN => items,
                    _ => return Err(Error(format!("expected {LEN}-tuple"))),
                };
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // Deterministic output regardless of hasher state.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
