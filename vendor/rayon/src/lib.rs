//! Vendored minimal stand-in for the `rayon` API subset this workspace
//! uses: `slice.par_iter().map(f).collect::<C>()`.
//!
//! Parallelism is real: items are claimed from an atomic work queue by
//! `std::thread::scope` workers (dynamic load balancing for uneven job
//! costs), and results are returned in input order.  `RAYON_NUM_THREADS`
//! caps the worker count, as upstream does.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// The traits needed for `.par_iter().map().collect()` call sites.
pub mod prelude {
    pub use super::{FromParallelVec, IntoParallelRefIterator, ParIter, ParMap};
}

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Types whose references can be iterated in parallel (`[T]`, and `Vec<T>`
/// through deref).
pub trait IntoParallelRefIterator<'data> {
    /// Item yielded by the parallel iterator.
    type Item: 'data;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each item through `f` (executed when collected).
    pub fn map<F, R>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; [`ParMap::collect`] executes it.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromParallelVec<R>,
    {
        C::from_ordered_vec(parallel_map(self.items, &self.f))
    }
}

/// Conversion from the ordered result vector of a parallel map; mirrors the
/// `FromParallelIterator` impls the workspace relies on.
pub trait FromParallelVec<T>: Sized {
    /// Builds the collection from results in input order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelVec<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

impl<T, E> FromParallelVec<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(v: Vec<Result<T, E>>) -> Self {
        v.into_iter().collect()
    }
}

/// Maps `f` over `items` on a scoped worker pool, preserving input order.
/// Workers claim indices from a shared atomic counter, so uneven per-item
/// costs balance dynamically (the property nested simulation sweeps need).
fn parallel_map<'data, T: Sync, R: Send>(
    items: &'data [T],
    f: &(impl Fn(&'data T) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        buckets = handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect();
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("parallel map missed an index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_results() {
        let items: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collects_into_result() {
        let items = vec![1u32, 2, 3];
        let ok: Result<Vec<u32>, String> = items.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap(), vec![1, 2, 3]);
        let err: Result<Vec<u32>, String> = items
            .par_iter()
            .map(|&x| {
                if x == 2 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn uneven_work_completes() {
        let items: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = items
            .par_iter()
            .map(|&x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x
            })
            .collect();
        assert_eq!(out, items);
    }
}
