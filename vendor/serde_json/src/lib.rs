//! Vendored minimal JSON codec for the vendored `serde` [`Value`] model:
//! recursive-descent parser plus compact/pretty writers.
//!
//! Matches upstream `serde_json` on the points this workspace relies on:
//! non-finite floats serialize as `null`, object order is preserved, and
//! `from_str` fails on trailing garbage.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Parses a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON into an `io::Write`.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::msg(format!("io error: {e}")))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: only handle the paired form;
                            // lone surrogates are a parse error.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| Error::msg("bad code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::msg("bad code point"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed to keep UTF-8 intact.
                    let start = self.pos - 1;
                    while let Some(&nb) = self.bytes.get(self.pos) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::Int(-(i as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

/// Writes `v` as JSON.  `indent = None` → compact; `Some(n)` → pretty with
/// `n`-space indent (matching upstream's pretty layout for 2 spaces).
fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if *f == f.trunc() && f.abs() < 1e15 {
                    // Upstream prints integral floats with a trailing `.0`.
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // JSON cannot encode NaN/inf; upstream serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn roundtrip_map() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), vec![1u32, 2, 3]);
        m.insert("b".to_string(), vec![]);
        let s = to_string_pretty(&m).unwrap();
        let back: HashMap<String, Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\"quote\"\tüñî\u{1F600}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
